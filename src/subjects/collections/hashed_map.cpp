#include "subjects/collections/hashed_map.hpp"

#include <functional>

namespace subjects::collections {

std::size_t HashedMap::bucket_of(const std::string& key) const {
  return std::hash<std::string>{}(key) % buckets_.size();
}

MEntry* HashedMap::find_entry(const std::string& key) const {
  for (MEntry* e = buckets_[bucket_of(key)].get(); e != nullptr;
       e = e->next.get())
    if (e->key == key) return e;
  return nullptr;
}

bool HashedMap::put(const std::string& key, int value) {
  return FAT_INVOKE(put, [&] {
    if (MEntry* e = find_entry(key)) {
      e->value = value;
      return false;
    }
    ++size_;       // BUG: counter bumped before the fallible step below
    ensure_load(); // may throw (injected) leaving size_ inconsistent
    auto& head = buckets_[bucket_of(key)];
    auto entry = std::make_unique<MEntry>();
    entry->key = key;
    entry->value = value;
    entry->next = std::move(head);
    head = std::move(entry);
    return true;
  });
}

bool HashedMap::put_if_absent(const std::string& key, int value) {
  return FAT_INVOKE(put_if_absent, [&] {
    if (contains_key(key)) return false;
    put(key, value);  // all mutation happens in the (non-atomic) callee
    return true;
  });
}

int HashedMap::get(const std::string& key) {
  return FAT_INVOKE(get, [&] {
    MEntry* e = find_entry(key);
    if (e == nullptr) throw KeyError();
    return e->value;
  });
}

int HashedMap::get_or(const std::string& key, int fallback) {
  return FAT_INVOKE(get_or, [&] {
    MEntry* e = find_entry(key);
    return e == nullptr ? fallback : e->value;
  });
}

bool HashedMap::contains_key(const std::string& key) {
  return FAT_INVOKE(contains_key,
                    [&] { return find_entry(key) != nullptr; });
}

int HashedMap::remove(const std::string& key) {
  return FAT_INVOKE(remove, [&] {
    std::unique_ptr<MEntry>* slot = &buckets_[bucket_of(key)];
    while (*slot != nullptr) {
      if ((*slot)->key == key) {
        const int v = (*slot)->value;
        *slot = std::move((*slot)->next);
        --size_;
        return v;
      }
      slot = &(*slot)->next;
    }
    throw KeyError();
  });
}

void HashedMap::clear() {
  FAT_INVOKE(clear, [&] {
    buckets_.clear();
    buckets_.resize(8);
    size_ = 0;
  });
}

std::vector<std::string> HashedMap::keys() {
  return FAT_INVOKE(keys, [&] {
    std::vector<std::string> out;
    for (const auto& head : buckets_)
      for (MEntry* e = head.get(); e != nullptr; e = e->next.get())
        out.push_back(e->key);
    return out;
  });
}

std::vector<int> HashedMap::values() {
  return FAT_INVOKE(values, [&] {
    std::vector<int> out;
    for (const auto& head : buckets_)
      for (MEntry* e = head.get(); e != nullptr; e = e->next.get())
        out.push_back(e->value);
    return out;
  });
}

void HashedMap::put_all(HashedMap& other) {
  FAT_INVOKE(put_all, [&] {
    for (const std::string& k : other.keys())
      put(k, other.get(k));  // partial progress on failure
  });
}

void HashedMap::ensure_load() {
  FAT_INVOKE(ensure_load, [&] {
    if (4 * size_ > 3 * bucket_count()) rehash(2 * bucket_count());
  });
}

void HashedMap::rehash(int n) {
  FAT_INVOKE(rehash, [&] {
    std::vector<std::unique_ptr<MEntry>> old = std::move(buckets_);
    buckets_.clear();
    buckets_.resize(static_cast<std::size_t>(n));
    for (auto& head : old) {
      while (head != nullptr) {
        std::unique_ptr<MEntry> e = std::move(head);
        head = std::move(e->next);
        auto& slot = buckets_[bucket_of(e->key)];
        e->next = std::move(slot);
        slot = std::move(e);
      }
    }
  });
}

}  // namespace subjects::collections
