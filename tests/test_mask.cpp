#include "fatomic/mask/masker.hpp"

#include <gtest/gtest.h>

#include "fatomic/detect/experiment.hpp"
#include "testing/synthetic.hpp"

namespace detect = fatomic::detect;
namespace mask = fatomic::mask;
namespace weave = fatomic::weave;
using detect::MethodClass;

namespace {

class MaskTest : public ::testing::Test {
 protected:
  static const detect::Classification& classification() {
    static detect::Classification cls = [] {
      detect::Experiment exp(synthetic::workload);
      return detect::classify(exp.run());
    }();
    return cls;
  }

  void TearDown() override {
    weave::Runtime::instance().set_mode(weave::Mode::Direct);
    weave::Runtime::instance().set_wrap_predicate(nullptr);
  }
};

}  // namespace

TEST_F(MaskTest, WrapPureSelectsExactlyPureMethods) {
  auto wrap = mask::wrap_pure(classification());
  auto& reg = weave::MethodRegistry::instance();
  EXPECT_TRUE(wrap(*reg.find("synthetic::Account::nonatomic_update")));
  EXPECT_TRUE(wrap(*reg.find("synthetic::Account::sloppy_withdraw")));
  EXPECT_TRUE(wrap(*reg.find("synthetic::Account::batch_add")));
  EXPECT_TRUE(wrap(*reg.find("synthetic::Account::transfer_all")));
  EXPECT_FALSE(wrap(*reg.find("synthetic::Account::calls_nonatomic")));
  EXPECT_FALSE(wrap(*reg.find("synthetic::Account::guarded_batch")));
  EXPECT_FALSE(wrap(*reg.find("synthetic::Account::set")));
}

TEST_F(MaskTest, WrapAllSelectsConditionalToo) {
  auto wrap = mask::wrap_all_nonatomic(classification());
  auto& reg = weave::MethodRegistry::instance();
  EXPECT_TRUE(wrap(*reg.find("synthetic::Account::calls_nonatomic")));
  EXPECT_TRUE(wrap(*reg.find("synthetic::Account::guarded_batch")));
  EXPECT_FALSE(wrap(*reg.find("synthetic::Account::set")));
}

TEST_F(MaskTest, NoWrapPolicyExcludesMethods) {
  detect::Policy policy;
  policy.no_wrap.insert("synthetic::Account::sloppy_withdraw");
  auto wrap = mask::wrap_pure(classification(), policy);
  auto& reg = weave::MethodRegistry::instance();
  EXPECT_FALSE(wrap(*reg.find("synthetic::Account::sloppy_withdraw")));
  EXPECT_TRUE(wrap(*reg.find("synthetic::Account::nonatomic_update")));
}

TEST_F(MaskTest, MaskedScopeMasksTheRealBug) {
  mask::MaskedScope scope(mask::wrap_pure(classification()));
  synthetic::Account a;
  a.set(10);
  EXPECT_THROW(a.sloppy_withdraw(100), synthetic::BankError);
  EXPECT_EQ(a.value(), 10) << "corrected program must preserve state";
}

TEST_F(MaskTest, MaskedWorkloadRunsToCompletion) {
  mask::MaskedScope scope(mask::wrap_pure(classification()));
  EXPECT_NO_THROW(synthetic::workload());
}

TEST_F(MaskTest, VerifyMaskedWithPureWrapYieldsZeroNonAtomic) {
  auto verified = mask::verify_masked(synthetic::workload,
                                      mask::wrap_pure(classification()));
  EXPECT_TRUE(verified.nonatomic_names().empty())
      << "wrapping all pure failure non-atomic methods must make the whole "
         "program failure atomic";
}

TEST_F(MaskTest, VerifyMaskedWithAllWrapYieldsZeroNonAtomic) {
  auto verified = mask::verify_masked(
      synthetic::workload, mask::wrap_all_nonatomic(classification()));
  EXPECT_TRUE(verified.nonatomic_names().empty());
}

TEST_F(MaskTest, VerifyUnmaskedStillFindsTheBugs) {
  auto verified = mask::verify_masked(
      synthetic::workload, [](const weave::MethodInfo&) { return false; });
  EXPECT_FALSE(verified.nonatomic_names().empty());
}

TEST_F(MaskTest, PartialMaskLeavesExcludedBugDetectable) {
  detect::Policy policy;
  policy.no_wrap.insert("synthetic::Account::sloppy_withdraw");
  auto verified = mask::verify_masked(
      synthetic::workload, mask::wrap_pure(classification(), policy));
  const auto* r = verified.find("synthetic::Account::sloppy_withdraw");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->cls, MethodClass::PureNonAtomic);
}

TEST_F(MaskTest, MaskingChangesSemanticsOfIntendedNonAtomicity) {
  // Section 4.3 first case: if non-atomicity is intended, wrapping changes
  // semantics — demonstrated here: without the mask the partial progress of
  // batch_add survives the exception, with the mask it does not.
  auto& rt = weave::Runtime::instance();

  // Unmasked: partial progress persists after an injected failure.
  {
    weave::ScopedMode m(weave::Mode::Inject);
    rt.begin_run(0);
    synthetic::Account a;
    a.set(0);
    // Threshold: fire at the entry of the second add_once call.  Each
    // add_once entry costs one runtime-exception point, batch_add's own
    // entry costs one.
    rt.begin_run(3);
    EXPECT_THROW(a.batch_add({1, 2, 3}), fatomic::InjectedRuntimeError);
    EXPECT_EQ(a.value(), 1) << "first element applied, second injected";
  }

  // Masked: rollback erases the partial progress.
  {
    mask::MaskedScope scope(mask::wrap_pure(classification()));
    weave::ScopedMode m(weave::Mode::InjectMask);
    rt.begin_run(0);
    synthetic::Account a;
    a.set(0);
    rt.begin_run(3);
    EXPECT_THROW(a.batch_add({1, 2, 3}), fatomic::InjectedRuntimeError);
    EXPECT_EQ(a.value(), 0) << "masked batch_add must roll back";
  }
}
