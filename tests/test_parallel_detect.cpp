// Parallel injection campaigns (CampaignSettings::jobs): a campaign sharded
// across worker threads with isolated thread-local runtimes must reproduce
// the sequential campaign bit for bit — runs, marks, classification, report
// JSON and aggregated stats — on real subjects.  Also covers the
// campaign-loop regressions fixed alongside: the terminal-run record of a
// genuinely escaping program, and wrap-predicate restoration around masked
// experiments.
#include "fatomic/detect/experiment.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fatomic/detect/classify.hpp"
#include "fatomic/mask/masker.hpp"
#include "fatomic/report/json.hpp"
#include "subjects/apps/apps.hpp"
#include "testing/synthetic.hpp"

namespace detect = fatomic::detect;
namespace report = fatomic::report;
namespace weave = fatomic::weave;

namespace {

void expect_same_campaign(const detect::Campaign& seq,
                          const detect::Campaign& par) {
  ASSERT_EQ(seq.runs.size(), par.runs.size());
  for (std::size_t i = 0; i < seq.runs.size(); ++i) {
    const detect::RunRecord& a = seq.runs[i];
    const detect::RunRecord& b = par.runs[i];
    EXPECT_EQ(a.injection_point, b.injection_point);
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.injected_method, b.injected_method) << "run " << i;
    EXPECT_EQ(a.injected_exception, b.injected_exception);
    EXPECT_EQ(a.escaped, b.escaped);
    EXPECT_EQ(a.escape_what, b.escape_what);
    ASSERT_EQ(a.marks.size(), b.marks.size()) << "run " << i;
    for (std::size_t j = 0; j < a.marks.size(); ++j) {
      EXPECT_EQ(a.marks[j].method, b.marks[j].method);
      EXPECT_EQ(a.marks[j].atomic, b.marks[j].atomic);
      EXPECT_EQ(a.marks[j].injection_point, b.marks[j].injection_point);
      EXPECT_EQ(a.marks[j].depth, b.marks[j].depth);
      EXPECT_EQ(a.marks[j].detail, b.marks[j].detail);
    }
  }
  EXPECT_EQ(seq.call_counts, par.call_counts);
  EXPECT_EQ(seq.call_edges, par.call_edges);
  EXPECT_EQ(seq.stats.snapshots_taken, par.stats.snapshots_taken);
  EXPECT_EQ(seq.stats.comparisons, par.stats.comparisons);
  EXPECT_EQ(seq.stats.rollbacks, par.stats.rollbacks);
  EXPECT_EQ(seq.stats.wrapped_calls, par.stats.wrapped_calls);
}

void expect_parallel_matches_sequential(const std::string& app_name) {
  const auto& app = subjects::apps::app(app_name);

  detect::CampaignSettings seq_opts;
  detect::Campaign seq = detect::Experiment(app.program, seq_opts).run();

  detect::CampaignSettings par_opts;
  par_opts.jobs = 4;
  detect::Campaign par = detect::Experiment(app.program, par_opts).run();

  expect_same_campaign(seq, par);
  EXPECT_EQ(report::campaign_json(seq), report::campaign_json(par));
  EXPECT_EQ(report::classification_json(detect::classify(seq)),
            report::classification_json(detect::classify(par)));
}

class ParallelDetectTest : public ::testing::Test {
 protected:
  void TearDown() override {
    auto& rt = weave::Runtime::instance();
    rt.set_mode(weave::Mode::Direct);
    rt.set_wrap_predicate(nullptr);
  }
};

}  // namespace

TEST_F(ParallelDetectTest, CollectionsSubjectIsDeterministic) {
  expect_parallel_matches_sequential("LinkedList");
}

TEST_F(ParallelDetectTest, XmlSubjectIsDeterministic) {
  expect_parallel_matches_sequential("xml2xml1");
}

TEST_F(ParallelDetectTest, SyntheticWorkloadIsDeterministic) {
  detect::Campaign seq = detect::Experiment(synthetic::workload).run();
  detect::CampaignSettings par_opts;
  par_opts.jobs = 8;
  detect::Campaign par =
      detect::Experiment(synthetic::workload, par_opts).run();
  expect_same_campaign(seq, par);
}

TEST_F(ParallelDetectTest, JobsZeroMeansHardwareConcurrency) {
  detect::CampaignSettings opts;
  opts.jobs = 0;
  detect::Campaign par = detect::Experiment(synthetic::workload, opts).run();
  detect::Campaign seq = detect::Experiment(synthetic::workload).run();
  expect_same_campaign(seq, par);
}

TEST_F(ParallelDetectTest, MaskedParallelVerificationMatchesSequential) {
  const auto& app = subjects::apps::app("LinkedList");
  auto cls = detect::classify(detect::Experiment(app.program).run());
  auto wrap = fatomic::mask::wrap_pure(cls);
  auto seq = fatomic::mask::verify_masked(app.program, wrap, {}, 1);
  auto par = fatomic::mask::verify_masked(app.program, wrap, {}, 4);
  EXPECT_EQ(report::classification_json(seq),
            report::classification_json(par));
  EXPECT_TRUE(par.nonatomic_names().empty());
}

TEST_F(ParallelDetectTest, MaxRunsCutoffAppliesInParallel) {
  detect::CampaignSettings seq_opts;
  seq_opts.max_runs = 7;
  detect::Campaign seq =
      detect::Experiment(synthetic::workload, seq_opts).run();
  detect::CampaignSettings par_opts;
  par_opts.max_runs = 7;
  par_opts.jobs = 4;
  detect::Campaign par =
      detect::Experiment(synthetic::workload, par_opts).run();
  EXPECT_EQ(seq.runs.size(), 7u);
  expect_same_campaign(seq, par);
}

namespace {

/// A workload that, beyond the instrumented calls, always escapes an
/// exception of its own — the campaign's terminal (uninjected, exhausted)
/// run must keep its record instead of silently dropping the escape.
void escaping_workload() {
  synthetic::Account a;
  a.set(10);
  a.atomic_update(5);
  throw std::runtime_error("genuine escape");
}

}  // namespace

TEST_F(ParallelDetectTest, TerminalEscapedRunIsRecorded) {
  detect::Campaign c = detect::Experiment(escaping_workload).run();
  ASSERT_FALSE(c.runs.empty());
  const detect::RunRecord& last = c.runs.back();
  EXPECT_FALSE(last.injected) << "terminal run must be uninjected";
  EXPECT_TRUE(last.escaped);
  EXPECT_EQ(last.escape_what, "genuine escape");
  // Every non-terminal run injected; only the terminal record is uninjected.
  for (std::size_t i = 0; i + 1 < c.runs.size(); ++i)
    EXPECT_TRUE(c.runs[i].injected) << "run " << i;
}

TEST_F(ParallelDetectTest, TerminalEscapedRunIsRecordedInParallel) {
  detect::CampaignSettings opts;
  opts.jobs = 4;
  detect::Campaign par = detect::Experiment(escaping_workload, opts).run();
  detect::Campaign seq = detect::Experiment(escaping_workload).run();
  expect_same_campaign(seq, par);
  EXPECT_TRUE(par.runs.back().escaped);
}

TEST_F(ParallelDetectTest, QuietTerminalRunIsStillDropped) {
  detect::Campaign c = detect::Experiment(synthetic::workload).run();
  for (const detect::RunRecord& run : c.runs) EXPECT_TRUE(run.injected);
}

TEST_F(ParallelDetectTest, MaskedExperimentRestoresOuterWrapPredicate) {
  auto& rt = weave::Runtime::instance();
  // An outer predicate, as installed by a surrounding MaskedScope.
  rt.set_wrap_predicate([](const weave::MethodInfo& mi) {
    return mi.method_name() == "set";
  });

  detect::CampaignSettings opts;
  opts.masked = true;
  opts.wrap = [](const weave::MethodInfo&) { return true; };
  detect::Experiment(synthetic::workload, opts).run();

  const auto* set_mi =
      weave::MethodRegistry::instance().find("synthetic::Account::set");
  const auto* helper_mi =
      weave::MethodRegistry::instance().find("synthetic::Account::helper");
  ASSERT_NE(set_mi, nullptr);
  ASSERT_NE(helper_mi, nullptr);
  EXPECT_TRUE(rt.should_wrap(*set_mi))
      << "outer predicate must survive the masked campaign";
  EXPECT_FALSE(rt.should_wrap(*helper_mi));
}

TEST_F(ParallelDetectTest, NestedMaskedScopesRestoreInOrder) {
  auto& rt = weave::Runtime::instance();
  {
    synthetic::Account a;
    a.set(1);  // force MethodInfo registration (lazy, on first call)
  }
  const auto* set_mi =
      weave::MethodRegistry::instance().find("synthetic::Account::set");
  ASSERT_NE(set_mi, nullptr);
  {
    fatomic::mask::MaskedScope outer(
        [](const weave::MethodInfo& mi) { return mi.method_name() == "set"; });
    {
      fatomic::mask::MaskedScope inner(
          [](const weave::MethodInfo&) { return false; });
      EXPECT_FALSE(rt.should_wrap(*set_mi));
    }
    EXPECT_TRUE(rt.should_wrap(*set_mi))
        << "inner scope must restore the outer predicate";
  }
  EXPECT_FALSE(rt.should_wrap(*set_mi));
}
