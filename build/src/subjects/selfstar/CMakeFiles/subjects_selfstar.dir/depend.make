# Empty dependencies file for subjects_selfstar.
# This may be replaced when dependencies are built.
