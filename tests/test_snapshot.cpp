#include "fatomic/snapshot/capture.hpp"

#include <gtest/gtest.h>

#include "fatomic/snapshot/restore.hpp"
#include "testing/types.hpp"

namespace snap = fatomic::snapshot;
using namespace testing_types;

FAT_POLY(Shape, Circle);
FAT_POLY(Shape, Rect);

TEST(Capture, PrimitiveLeaves) {
  Plain p{7, 2.5, true, "abc"};
  snap::Snapshot s = snap::capture(p);
  ASSERT_GT(s.node_count(), 4u);
  const snap::Node& root = s.node(s.root());
  EXPECT_EQ(root.kind, snap::NodeKind::Object);
  ASSERT_EQ(root.children.size(), 4u);
  EXPECT_EQ(std::get<std::int64_t>(s.node(root.children[0]).value), 7);
  EXPECT_EQ(std::get<snap::F64Bits>(s.node(root.children[1]).value).value(),
            2.5);
  EXPECT_EQ(std::get<bool>(s.node(root.children[2]).value), true);
  EXPECT_EQ(std::get<std::string>(s.node(root.children[3]).value), "abc");
}

TEST(Capture, EqualValuesProduceEqualSnapshots) {
  Plain a{1, 2.0, false, "x"};
  Plain b{1, 2.0, false, "x"};
  EXPECT_TRUE(snap::capture(a).equals(snap::capture(b)));
}

TEST(Capture, DifferentValuesProduceDifferentSnapshots) {
  Plain a{1, 2.0, false, "x"};
  Plain b{1, 2.0, false, "y"};
  EXPECT_FALSE(snap::capture(a).equals(snap::capture(b)));
}

TEST(Capture, NestedContainers) {
  Nested n;
  n.inner = {3, 1.0, true, "in"};
  n.values = {1, 2, 3};
  n.table = {{"a", 1}, {"b", 2}};
  n.opt = 9;
  snap::Snapshot s1 = snap::capture(n);
  snap::Snapshot s2 = snap::capture(n);
  EXPECT_TRUE(s1.equals(s2));

  n.table["c"] = 3;
  EXPECT_FALSE(s1.equals(snap::capture(n)));
}

TEST(Capture, OptionalEngagementMatters) {
  Nested a, b;
  a.opt = 0;
  b.opt = std::nullopt;
  EXPECT_FALSE(snap::capture(a).equals(snap::capture(b)));
}

TEST(Capture, NullAndNonNullPointersDiffer) {
  AliasPair a;
  a.owner = std::make_unique<Plain>();
  AliasPair b;
  EXPECT_FALSE(snap::capture(a).equals(snap::capture(b)));
}

TEST(Capture, SharedPointeeBecomesSharedNode) {
  AliasPair p;
  p.owner = std::make_unique<Plain>(Plain{5, 0, false, ""});
  p.alias = p.owner.get();
  snap::Snapshot s = snap::capture(p);
  const snap::Node& root = s.node(s.root());
  const snap::Node& owner_edge = s.node(root.children[0]);
  const snap::Node& alias_edge = s.node(root.children[1]);
  ASSERT_EQ(owner_edge.kind, snap::NodeKind::Pointer);
  ASSERT_EQ(alias_edge.kind, snap::NodeKind::Pointer);
  EXPECT_EQ(owner_edge.pointee, alias_edge.pointee);
  EXPECT_TRUE(owner_edge.owned_edge);
  EXPECT_FALSE(alias_edge.owned_edge);
}

TEST(Capture, AliasStructureIsPartOfEquality) {
  // Same values, different sharing: alias at owner vs alias at an external
  // object with identical contents.
  Plain external{5, 0, false, ""};
  AliasPair shared_pair;
  shared_pair.owner = std::make_unique<Plain>(Plain{5, 0, false, ""});
  shared_pair.alias = shared_pair.owner.get();
  AliasPair split_pair;
  split_pair.owner = std::make_unique<Plain>(Plain{5, 0, false, ""});
  split_pair.alias = &external;
  EXPECT_FALSE(snap::capture(shared_pair).equals(snap::capture(split_pair)));
}

TEST(Capture, OwnedRawChain) {
  LinkList l;
  l.push_front(1);
  l.push_front(2);
  snap::Snapshot s1 = snap::capture(l);
  LinkList l2;
  l2.push_front(1);
  l2.push_front(2);
  EXPECT_TRUE(s1.equals(snap::capture(l2)));
  l2.push_front(3);
  EXPECT_FALSE(s1.equals(snap::capture(l2)));
}

TEST(Capture, CyclicGraphTerminates) {
  Ring r;
  r.insert(1);
  r.insert(2);
  r.insert(3);
  snap::Snapshot s = snap::capture(r);
  EXPECT_GT(s.node_count(), 3u);
  // A second identical ring captures identically.
  Ring r2;
  r2.insert(1);
  r2.insert(2);
  r2.insert(3);
  EXPECT_TRUE(s.equals(snap::capture(r2)));
}

TEST(Capture, CycleLengthMatters) {
  Ring a, b;
  a.insert(1);
  b.insert(1);
  b.insert(1);
  EXPECT_FALSE(snap::capture(a).equals(snap::capture(b)));
}

TEST(Capture, RcPtrChains) {
  RcList l;
  l.push_front(10);
  l.push_front(20);
  RcList m;
  m.push_front(10);
  m.push_front(20);
  EXPECT_TRUE(snap::capture(l).equals(snap::capture(m)));
  m.head->value = 99;
  EXPECT_FALSE(snap::capture(l).equals(snap::capture(m)));
}

TEST(Capture, SharedPtrDiamond) {
  SharedDiamond d;
  d.left = std::make_shared<Plain>(Plain{1, 0, false, ""});
  d.right = d.left;
  snap::Snapshot s = snap::capture(d);
  const snap::Node& root = s.node(s.root());
  EXPECT_EQ(s.node(root.children[0]).pointee, s.node(root.children[1]).pointee);

  SharedDiamond split;
  split.left = std::make_shared<Plain>(Plain{1, 0, false, ""});
  split.right = std::make_shared<Plain>(Plain{1, 0, false, ""});
  EXPECT_FALSE(s.equals(snap::capture(split)));
}

TEST(Capture, PolymorphicDynamicTypeDispatch) {
  Drawing d;
  auto c = std::make_unique<Circle>();
  c->id = 1;
  c->radius = 2.0;
  d.shapes.push_back(std::move(c));
  auto r = std::make_unique<Rect>();
  r->id = 2;
  r->w = 3.0;
  r->h = 4.0;
  d.shapes.push_back(std::move(r));
  d.title = "two shapes";

  snap::Snapshot s = snap::capture(d);
  // Find the two object nodes created through the poly registry.
  int circles = 0, rects = 0;
  for (const auto& n : s.nodes()) {
    if (std::string_view(n.type_name) == "testing_types::Circle") ++circles;
    if (std::string_view(n.type_name) == "testing_types::Rect") ++rects;
  }
  EXPECT_EQ(circles, 1);
  EXPECT_EQ(rects, 1);
}

TEST(Capture, PolymorphicDynamicTypeIsPartOfEquality) {
  Drawing a, b;
  auto c = std::make_unique<Circle>();
  c->id = 1;
  a.shapes.push_back(std::move(c));
  auto r = std::make_unique<Rect>();
  r->id = 1;
  b.shapes.push_back(std::move(r));
  EXPECT_FALSE(snap::capture(a).equals(snap::capture(b)));
}

TEST(Capture, TupleRoots) {
  Plain p{1, 0, false, "a"};
  int extra = 5;
  auto root = std::tie(p, extra);
  snap::Snapshot s1 = snap::capture(root);
  extra = 6;
  snap::Snapshot s2 = snap::capture(root);
  EXPECT_FALSE(s1.equals(s2));
}

TEST(Snapshot, HashConsistentWithEquality) {
  Plain a{1, 2.0, false, "x"};
  Plain b{1, 2.0, false, "x"};
  Plain c{2, 2.0, false, "x"};
  EXPECT_EQ(snap::capture(a).hash(), snap::capture(b).hash());
  EXPECT_NE(snap::capture(a).hash(), snap::capture(c).hash());
}

TEST(Snapshot, ToStringMentionsStructure) {
  Plain p{1, 2.0, false, "x"};
  std::string dump = snap::capture(p).to_string();
  EXPECT_NE(dump.find("testing_types::Plain"), std::string::npos);
  EXPECT_NE(dump.find("prim"), std::string::npos);
}

TEST(Capture, EnumAndUnsignedPrimitives) {
  struct Local {
    unsigned u;
    char c;
  };
  // Not reflected: capture members individually through a tuple root.
  unsigned u = 7;
  char c = 'z';
  auto root = std::tie(u, c);
  snap::Snapshot s = snap::capture(root);
  const auto& rootn = s.node(s.root());
  EXPECT_EQ(std::get<std::uint64_t>(s.node(rootn.children[0]).value), 7u);
  EXPECT_EQ(std::get<char>(s.node(rootn.children[1]).value), 'z');
}
