// Name of the exception currently in flight, for the exception-flow lint
// (analyze/exception_flow.hpp): an injection wrapper that intercepts a
// propagating exception records its demangled type name in the Mark, so the
// static Analyzer can cross-check every dynamically observed exception
// against the method's computed may-propagate set.
//
// Uses the Itanium C++ ABI introspection hooks (GCC/Clang); on other
// toolchains the name is empty and the lint degrades to a no-op.
#pragma once

#include <string>

#if defined(__GNUG__)
#include <cxxabi.h>

#include <cstdlib>
#include <typeinfo>
#endif

namespace fatomic::weave {

/// Demangled type name of the exception being handled by the innermost
/// enclosing catch block, or "" when unavailable.  Must be called from
/// inside a catch handler.
inline std::string current_exception_type_name() {
#if defined(__GNUG__)
  const std::type_info* ti = abi::__cxa_current_exception_type();
  if (ti == nullptr) return {};
  int status = 0;
  char* demangled = abi::__cxa_demangle(ti->name(), nullptr, nullptr, &status);
  if (status != 0 || demangled == nullptr) return ti->name();
  std::string out(demangled);
  std::free(demangled);
  return out;
#else
  return {};
#endif
}

}  // namespace fatomic::weave
