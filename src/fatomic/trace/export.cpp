#include "fatomic/trace/export.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>

#include "fatomic/detect/campaign.hpp"
#include "fatomic/report/json.hpp"
#include "fatomic/trace/metrics.hpp"
#include "fatomic/unwind/provenance.hpp"

namespace fatomic::trace {

namespace {

/// Microseconds with sub-µs precision — the unit Chrome's "ts"/"dur" expect.
std::string us(std::uint64_t ns) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << static_cast<double>(ns) / 1000.0;
  return os.str();
}

void emit_metadata(std::ostringstream& os, int pid, int tid, const char* what,
                   const std::string& name, bool& first) {
  if (!first) os << ',';
  first = false;
  os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
     << report::json_escape(name) << "\"}}";
}

void emit_process(std::ostringstream& os, int pid, const Trace& trace,
                  const std::string& process_name, bool& first) {
  emit_metadata(os, pid, 0, "process_name", process_name, first);
  std::set<std::uint16_t> workers;
  for (const Event& e : trace.events) workers.insert(e.worker);
  for (std::uint16_t w : workers)
    emit_metadata(os, pid, w, "thread_name",
                  w == 0 ? "driver" : "worker " + std::to_string(w), first);

  for (const Event& e : trace.events) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"" << (e.dur_ns != 0 || e.kind == EventKind::Campaign ||
                                   e.kind == EventKind::Baseline ||
                                   e.kind == EventKind::Run
                               ? "X"
                               : "i")
       << "\",\"pid\":" << pid << ",\"tid\":" << e.worker
       << ",\"ts\":" << us(e.ts_ns);
    if (e.dur_ns != 0 || e.kind == EventKind::Campaign ||
        e.kind == EventKind::Baseline || e.kind == EventKind::Run)
      os << ",\"dur\":" << us(e.dur_ns);
    else
      os << ",\"s\":\"t\"";
    os << ",\"name\":\"" << to_string(e.kind)
       << "\",\"cat\":\"fatomic\",\"args\":{\"injection_point\":"
       << e.injection_point;
    if (e.method != nullptr)
      os << ",\"method\":\""
         << report::json_escape(e.method->qualified_name()) << '"';
    os << ",\"value\":" << e.value;
    if (!e.detail.empty())
      os << ",\"detail\":\"" << report::json_escape(e.detail) << '"';
    if (e.kind == EventKind::ThrowSite && e.value != 0) {
      // Symbolize the interned stack here, at export time — the capture
      // path recorded raw PCs only.
      os << ",\"stack\":[";
      bool sfirst = true;
      for (const std::string& frame : unwind::symbolize_stack(e.value)) {
        if (!sfirst) os << ',';
        sfirst = false;
        os << '"' << report::json_escape(frame) << '"';
      }
      os << ']';
    }
    os << "}}";
  }
}

}  // namespace

std::string chrome_trace_json(const Trace& trace,
                              const std::string& process_name) {
  return chrome_trace_json({{process_name, trace}});
}

std::string chrome_trace_json(
    const std::vector<std::pair<std::string, Trace>>& traces) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  int pid = 0;
  for (const auto& [name, trace] : traces)
    emit_process(os, pid++, trace, name, first);
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

std::string trace_summary(const Trace& trace) {
  struct KindStats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, KindStats> kinds;
  std::map<std::string, std::uint64_t> method_ns;
  for (const Event& e : trace.events) {
    KindStats& ks = kinds[to_string(e.kind)];
    ++ks.count;
    ks.total_ns += e.dur_ns;
    if (e.method != nullptr && e.dur_ns != 0)
      method_ns[e.method->qualified_name()] += e.dur_ns;
  }

  const std::uint64_t wall = trace.duration_ns();
  std::ostringstream os;
  os << "trace summary: " << trace.events.size() << " events, campaign "
     << us(wall) << " us\n";
  os << std::left << std::setw(20) << "  event" << std::right << std::setw(10)
     << "count" << std::setw(14) << "total us" << std::setw(12) << "mean us"
     << std::setw(9) << "share\n";
  for (const auto& [kind, ks] : kinds) {
    os << "  " << std::left << std::setw(18) << kind << std::right
       << std::setw(10) << ks.count << std::setw(14) << us(ks.total_ns)
       << std::setw(12) << us(ks.count == 0 ? 0 : ks.total_ns / ks.count);
    std::ostringstream share;
    if (wall != 0 && ks.total_ns != 0)
      share << std::fixed << std::setprecision(1)
            << 100.0 * static_cast<double>(ks.total_ns) /
                   static_cast<double>(wall)
            << '%';
    else
      share << '-';
    os << std::setw(8) << share.str() << '\n';
  }

  std::vector<std::pair<std::string, std::uint64_t>> top(method_ns.begin(),
                                                         method_ns.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (top.size() > 5) top.resize(5);
  if (!top.empty()) {
    os << "  top methods by span time:\n";
    for (const auto& [name, ns] : top)
      os << "    " << std::left << std::setw(30) << name << std::right
         << std::setw(12) << us(ns) << " us\n";
  }

  // Throw-site provenance: one line per distinct captured throw site, most
  // frequent first (symbolized lazily here, never on the capture path).
  // Aggregated by rendered name so stack ids differing only in calling
  // context collapse into one row.
  std::map<std::string, std::uint64_t> site_counts;
  for (const Event& e : trace.events)
    if (e.kind == EventKind::ThrowSite && e.value != 0)
      ++site_counts[unwind::site_name(e.value)];
  if (!site_counts.empty()) {
    std::vector<std::pair<std::string, std::uint64_t>> sites(
        site_counts.begin(), site_counts.end());
    std::sort(sites.begin(), sites.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    os << "  throw sites:\n";
    for (const auto& [site, count] : sites)
      os << "    " << std::left << std::setw(52) << site << std::right
         << std::setw(8) << count << '\n';
  }
  return os.str();
}

std::string trace_section_json(const detect::Campaign& campaign) {
  std::ostringstream os;
  os << "{\"enabled\":" << (campaign.trace.enabled ? "true" : "false")
     << ",\"events\":" << campaign.trace.events.size()
     << ",\"duration_ns\":" << campaign.trace.duration_ns()
     << ",\"workers\":[";
  bool first = true;
  for (const auto& w : campaign.worker_stats) {
    if (!first) os << ',';
    first = false;
    os << "{\"worker\":" << w.worker << ",\"runs\":" << w.runs
       << ",\"stats\":{\"snapshots\":" << w.stats.snapshots_taken
       << ",\"comparisons\":" << w.stats.comparisons
       << ",\"rollbacks\":" << w.stats.rollbacks
       << ",\"wrapped_calls\":" << w.stats.wrapped_calls
       << ",\"partial_checkpoints\":" << w.stats.partial_checkpoints
       << ",\"partial_fallbacks\":" << w.stats.partial_fallbacks
       << ",\"checkpoint_units\":" << w.stats.checkpoint_units
       << ",\"validator_divergences\":" << w.stats.validator_divergences
       << "}}";
  }
  os << "],\"metrics\":" << campaign_metrics(campaign).to_json() << '}';
  return os.str();
}

}  // namespace fatomic::trace
