# Empty dependencies file for bench_casestudy.
# This may be replaced when dependencies are built.
