#include "fatomic/detect/callgraph.hpp"

#include <gtest/gtest.h>

#include "fatomic/detect/experiment.hpp"
#include "testing/synthetic.hpp"

namespace detect = fatomic::detect;

namespace {

class CallGraphTest : public ::testing::Test {
 protected:
  static const detect::Campaign& campaign() {
    static detect::Campaign c = [] {
      detect::Experiment exp(synthetic::workload);
      return exp.run();
    }();
    return c;
  }
  static const detect::CallGraph& graph() {
    static detect::CallGraph g = detect::CallGraph::from(campaign());
    return g;
  }
  void TearDown() override {
    fatomic::weave::Runtime::instance().set_mode(fatomic::weave::Mode::Direct);
  }
};

}  // namespace

TEST_F(CallGraphTest, RecordsTopLevelCalls) {
  auto callees = graph().callees_of(detect::CallGraph::kRoot);
  EXPECT_FALSE(callees.empty());
  // set() is only ever called from the program top level.
  auto callers = graph().callers_of("synthetic::Account::set");
  ASSERT_EQ(callers.size(), 1u);
  EXPECT_EQ(callers[0], detect::CallGraph::kRoot);
}

TEST_F(CallGraphTest, RecordsNestedEdges) {
  auto callers = graph().callers_of("synthetic::Account::nonatomic_update");
  // Called from the top level and from calls_nonatomic.
  EXPECT_NE(std::find(callers.begin(), callers.end(),
                      "synthetic::Account::calls_nonatomic"),
            callers.end());
  auto callees = graph().callees_of("synthetic::Account::nonatomic_update");
  ASSERT_EQ(callees.size(), 1u);
  EXPECT_EQ(callees[0], "synthetic::Account::helper");
}

TEST_F(CallGraphTest, EdgeCountsMatchCallCounts) {
  // batch_add({1,2,3}) then guarded_batch({4,5}) -> batch_add calls add_once
  // 3 + 2 = 5 times; the workload also calls add_once once directly.
  const auto& edges = graph().edges();
  auto it = edges.find("synthetic::Account::batch_add");
  ASSERT_NE(it, edges.end());
  EXPECT_EQ(it->second.at("synthetic::Account::add_once"), 5u);
  EXPECT_EQ(edges.at(detect::CallGraph::kRoot)
                .at("synthetic::Account::add_once"),
            1u);
}

TEST_F(CallGraphTest, DotOutputHighlightsClassification) {
  auto cls = detect::classify(campaign());
  std::string dot = graph().to_dot(&cls);
  EXPECT_NE(dot.find("digraph calls"), std::string::npos);
  EXPECT_NE(dot.find("\"synthetic::Account::nonatomic_update\" [color=red"),
            std::string::npos);
  EXPECT_NE(
      dot.find("\"synthetic::Account::calls_nonatomic\" [color=orange"),
      std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST_F(CallGraphTest, EdgeCountIsConsistent) {
  std::size_t n = 0;
  for (const auto& [caller, callees] : graph().edges()) n += callees.size();
  EXPECT_EQ(n, graph().edge_count());
  EXPECT_GT(n, 5u);
}

TEST_F(CallGraphTest, BlameIdentifiesSingleSiteVictims) {
  auto blame = detect::blame_analysis(campaign());
  // nonatomic_update's only fallible callee is helper(): single site.
  auto singles = blame.single_site_victims();
  auto it = singles.find("synthetic::Account::nonatomic_update");
  ASSERT_NE(it, singles.end());
  EXPECT_EQ(it->second, "synthetic::Account::helper");
}

TEST_F(CallGraphTest, RealBugsAreNotSingleSite) {
  // sloppy_withdraw throws for real: its non-atomic mark appears in runs
  // injected at many different sites, so no single declaration absolves it.
  auto blame = detect::blame_analysis(campaign());
  auto it = blame.sites_of.find("synthetic::Account::sloppy_withdraw");
  ASSERT_NE(it, blame.sites_of.end());
  EXPECT_GT(it->second.size(), 1u);
  EXPECT_EQ(blame.single_site_victims().count(
                "synthetic::Account::sloppy_withdraw"),
            0u);
}

TEST_F(CallGraphTest, SuggestionsAreVerifiedByReclassification) {
  // Applying every suggested exception-free declaration must strictly reduce
  // the number of non-atomic methods.
  auto before = detect::classify(campaign());
  detect::Policy policy;
  auto suggestions = detect::suggest_exception_free(campaign());
  ASSERT_FALSE(suggestions.empty());
  for (const auto& site : suggestions) policy.exception_free.insert(site);
  auto after = detect::classify(campaign(), policy);
  EXPECT_LT(after.nonatomic_names().size(), before.nonatomic_names().size());
}

TEST_F(CallGraphTest, EmptyCampaignYieldsEmptyGraph) {
  detect::Campaign empty;
  auto g = detect::CallGraph::from(empty);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(detect::blame_analysis(empty).sites_of.empty());
  EXPECT_TRUE(detect::suggest_exception_free(empty).empty());
}
