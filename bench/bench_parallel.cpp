// Parallel-campaign speedup: sequential vs N-thread wall time of the full
// injection campaign over the collections subjects (CampaignSettings::jobs).
// Campaign runs at distinct thresholds are independent re-executions, so on
// a machine with J hardware threads the campaign phase should approach a Jx
// speedup; the Count-mode baseline run stays sequential.  The bench prints
// one row per subject plus a suite total, and verifies on the fly that the
// parallel campaign classifies identically to the sequential one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fatomic/detect/classify.hpp"
#include "fatomic/detect/experiment.hpp"
#include "fatomic/report/json.hpp"
#include "subjects/apps/apps.hpp"

namespace detect = fatomic::detect;

namespace {

double campaign_ms(const std::function<void()>& program, unsigned jobs,
                   detect::Campaign& out) {
  detect::CampaignSettings opts;
  opts.jobs = jobs;
  const auto t0 = std::chrono::steady_clock::now();
  out = detect::Experiment(program, opts).run();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  const unsigned jobs = 4;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("parallel campaign speedup (jobs=%u, hardware threads=%u)\n",
              jobs, hw);
  std::printf("%-16s %10s %10s %8s %6s\n", "app", "seq ms", "par ms",
              "speedup", "same");

  // The collections subjects of the Java suite (Table 1).
  const std::vector<std::string> names = {
      "CircularList", "Dynarray",     "HashedMap", "HashedSet",   "LLMap",
      "LinkedBuffer", "LinkedList",   "RBMap",     "RBTree"};

  double seq_total = 0, par_total = 0;
  bool all_identical = true;
  bench_common::JsonArray rows;
  for (const std::string& name : names) {
    const auto& app = subjects::apps::app(name);
    detect::Campaign seq, par;
    // Median-of-3 to keep one-off scheduling noise out of the ratio.
    double seq_ms = 1e300, par_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      seq_ms = std::min(seq_ms, campaign_ms(app.program, 1, seq));
      par_ms = std::min(par_ms, campaign_ms(app.program, jobs, par));
    }
    const bool identical =
        fatomic::report::campaign_json(seq) ==
            fatomic::report::campaign_json(par) &&
        fatomic::report::classification_json(detect::classify(seq)) ==
            fatomic::report::classification_json(detect::classify(par));
    all_identical = all_identical && identical;
    seq_total += seq_ms;
    par_total += par_ms;
    std::printf("%-16s %10.1f %10.1f %7.2fx %6s\n", app.name.c_str(), seq_ms,
                par_ms, seq_ms / par_ms, identical ? "yes" : "NO");
    rows.add_raw(bench_common::JsonObject{}
                     .put("app", app.name)
                     .put("seq_ms", seq_ms)
                     .put("par_ms", par_ms)
                     .put("speedup", seq_ms / par_ms)
                     .put("identical", identical)
                     .dump());
  }
  std::printf("%-16s %10.1f %10.1f %7.2fx %6s\n", "TOTAL", seq_total,
              par_total, seq_total / par_total, all_identical ? "yes" : "NO");
  if (hw < jobs)
    std::printf("note: only %u hardware thread(s); speedup is bounded by the "
                "machine, not the sharding\n",
                hw);
  bench_common::write_bench_json(
      "parallel", bench_common::JsonObject{}
                      .put("jobs", jobs)
                      .put("hardware_threads", hw)
                      .put_raw("apps", rows.dump())
                      .put("seq_total_ms", seq_total)
                      .put("par_total_ms", par_total)
                      .put("speedup", seq_total / par_total)
                      .put("all_identical", all_identical)
                      .dump());
  return all_identical ? 0 : 1;
}
