// The automated-experiment driver (Figure 1, step 3): executes the injector
// program repeatedly, incrementing the injection threshold before each run so
// every potential injection point fires exactly once across the campaign.
// The campaign terminates when a run's counter never reaches the threshold —
// all injection points of the (deterministic) program are then exhausted.
//
// Runs at distinct thresholds are independent re-executions of the same
// deterministic program, so with Options::jobs > 1 the driver shards them
// across a worker pool of isolated thread-local runtimes and merges the
// records back in threshold order — producing exactly the Campaign the
// sequential loop would, including the stop-at-first-exhausted-run cutoff.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fatomic/detect/campaign.hpp"
#include "fatomic/weave/runtime.hpp"

namespace fatomic::detect {

struct Options {
  /// Safety valve against runaway campaigns on non-terminating programs.
  std::uint64_t max_runs = 10'000'000;

  /// Worker threads running injector runs concurrently.  1 (the default)
  /// keeps the strictly sequential loop on the calling thread; 0 means "one
  /// per hardware thread".  Any value yields a Campaign identical to the
  /// sequential one provided the program is deterministic and shares no
  /// mutable state across invocations (every subject workload constructs
  /// fresh objects per run).
  unsigned jobs = 1;

  /// Run the campaign against the *corrected* program (injection wrappers
  /// around atomicity wrappers) to verify that masking removed all
  /// non-atomic behaviour.  Requires `wrap` (or a predicate already
  /// installed in the runtime).
  bool masked = false;

  /// Wrap predicate installed for the duration of the campaign when
  /// `masked` is set.
  weave::Runtime::WrapPredicate wrap;

  /// Attach a one-line object-graph diff to every non-atomic mark (what
  /// state the failed method left behind).  Costs one diff per intercepted
  /// exception.
  bool record_diffs = false;

  /// Per-method checkpoint plans (write-set analysis output) installed into
  /// the runtime for the duration of the campaign; the atomicity wrappers
  /// consult them for field-granular checkpointing.  Null leaves whatever
  /// plans the runtime already holds.  Only meaningful with `masked`.
  std::shared_ptr<const weave::PlanMap> checkpoint_plans;

  /// Completeness validator: shadow every partial checkpoint with a full
  /// one and count rollback divergences (stats.validator_divergences).
  bool validate_checkpoints = false;

  /// Static campaign pruning (analyze::StaticReport::prune_set feeds this):
  /// qualified names of methods the static analysis proved failure atomic.
  /// The Count baseline additionally records the call stack at every
  /// injection point; a threshold whose entire stack consists of methods in
  /// this set is skipped — the run could only produce atomic marks for
  /// methods already known atomic, so the resulting classification sets are
  /// unchanged while the campaign executes fewer injector runs.  Empty set =
  /// no pruning.  Soundness argument: DESIGN.md §7.
  std::set<std::string> prune_atomic;
};

class Experiment {
 public:
  explicit Experiment(std::function<void()> program, Options opts = {});

  /// Runs the full campaign: one Count-mode baseline run for call counts,
  /// then one injector run per injection point (parallelised over
  /// Options::jobs workers when jobs != 1).  With Options::prune_atomic,
  /// thresholds whose injection-time call stack is entirely proven atomic
  /// are skipped and counted in Campaign::pruned_runs instead.
  Campaign run();

 private:
  /// prunable[t] == true means threshold t is statically skippable; the
  /// vector is empty when pruning is off.
  void run_sequential(Campaign& campaign, weave::Mode mode,
                      const std::vector<bool>& prunable);
  void run_parallel(Campaign& campaign, weave::Mode mode, unsigned jobs,
                    const std::vector<bool>& prunable);

  std::function<void()> program_;
  Options opts_;
};

}  // namespace fatomic::detect
