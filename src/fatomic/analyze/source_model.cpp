#include "fatomic/analyze/source_model.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fatomic::analyze {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident(const std::string& t) {
  return !t.empty() && (std::isalpha(static_cast<unsigned char>(t[0])) ||
                        t[0] == '_');
}

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "if",     "else",  "for",    "while",  "do",      "switch", "case",
      "return", "break", "continue", "throw", "try",    "catch",  "new",
      "delete", "const", "static", "class",  "struct",  "enum",   "union",
      "public", "private", "protected", "namespace", "using", "template",
      "typename", "operator", "sizeof", "true", "false", "nullptr", "this",
      "auto", "void", "int", "bool", "char", "unsigned", "signed", "long",
      "short", "float", "double", "noexcept", "override", "final", "virtual",
      "explicit", "inline", "constexpr", "mutable", "friend", "default",
      "goto", "extern", "typedef",
  };
  return kw;
}

}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  auto at = [&](std::size_t k) { return k < n ? src[k] : '\0'; };
  while (i < n) {
    const char c = src[i];
    if (c == '\\' && at(i + 1) == '\n') {
      i += 2;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) ++i;
      i = std::min(n, i + 2);
      continue;
    }
    if (c == '#') {  // preprocessor directive, possibly line-continued
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && at(i + 1) == '\n') ++i;
        ++i;
      }
      continue;
    }
    if (c == 'R' && at(i + 1) == '"') {  // raw string literal
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, j);
      i = end == std::string::npos ? n : end + closer.size();
      out.push_back({"\"\""});
      continue;
    }
    if (c == '"') {
      ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\') ++i;
        ++i;
      }
      ++i;
      out.push_back({"\"\""});
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\') ++i;
        ++i;
      }
      ++i;
      out.push_back({"''"});
      continue;
    }
    if (ident_char(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.push_back({src.substr(i, j - i)});
      i = j;
      continue;
    }
    static const char* ops3[] = {"<<=", ">>=", "->*", "..."};
    static const char* ops2[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                                 ">=", "==", "!=", "&&", "||", "+=", "-=",
                                 "*=", "/=", "%=", "&=", "|=", "^="};
    bool matched = false;
    for (const char* op : ops3) {
      if (src.compare(i, 3, op) == 0) {
        out.push_back({op});
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* op : ops2) {
      if (src.compare(i, 2, op) == 0) {
        out.push_back({op});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.push_back({std::string(1, c)});
    ++i;
  }
  return out;
}

namespace {

using Tokens = std::vector<Token>;

/// Index of the matching close token for the open token at `i`, or
/// tokens.size() when unbalanced.  open/close are single-token delimiters.
std::size_t match_forward(const Tokens& t, std::size_t i, const char* open,
                          const char* close) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].text == open) ++depth;
    else if (t[k].text == close && --depth == 0) return k;
  }
  return t.size();
}

/// Joins identifier/"::" tokens starting at `i` into a qualified name;
/// advances `i` past them.
std::string read_qualified(const Tokens& t, std::size_t& i) {
  std::string name;
  while (i < t.size() && (is_ident(t[i].text) || t[i].text == "::")) {
    name += t[i].text;
    ++i;
  }
  return name;
}

/// FAT_METHOD_INFO / FAT_STATIC_INFO / FAT_CTOR_INFO / FAT_REFLECT harvester.
void harvest_macros(const Tokens& t, SourceModel& model) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    const std::string& m = t[i].text;
    const bool method = m == "FAT_METHOD_INFO";
    const bool stat = m == "FAT_STATIC_INFO";
    const bool ctor = m == "FAT_CTOR_INFO";
    const bool reflect = m == "FAT_REFLECT" || m == "FAT_REFLECT_EMPTY";
    const bool poly = m == "FAT_POLY";
    if (!(method || stat || ctor || reflect || poly) || t[i + 1].text != "(")
      continue;
    const std::size_t close = match_forward(t, i + 1, "(", ")");
    if (close >= t.size()) continue;
    std::size_t k = i + 2;
    const std::string cls = read_qualified(t, k);
    if (cls.empty()) continue;
    if (poly) {
      // FAT_POLY(Base, Derived): both ends are polymorphic types.
      auto simple = [](const std::string& q) {
        const auto pos = q.rfind("::");
        return pos == std::string::npos ? q : q.substr(pos + 2);
      };
      model.poly_classes.insert(simple(cls));
      if (k < close && t[k].text == ",") {
        ++k;
        const std::string derived = read_qualified(t, k);
        if (!derived.empty()) model.poly_classes.insert(simple(derived));
      }
      i = close;
      continue;
    }
    ClassModel& cm = model.classes[cls];
    cm.qualified_name = cls;
    if (reflect) {
      cm.reflected = true;
      for (; k < close; ++k) {
        if (t[k].text != "FAT_FIELD" && t[k].text != "FAT_OWNED") continue;
        // FAT_FIELD(Class, field) / FAT_OWNED(Class, field)
        std::size_t f = k + 2;
        (void)read_qualified(t, f);  // class
        if (f < close && t[f].text == ",") {
          ++f;
          if (f < close && is_ident(t[f].text)) cm.fields.insert(t[f].text);
        }
      }
    } else if (ctor) {
      cm.has_ctor_info = true;
    } else {
      if (k >= close || t[k].text != ",") continue;
      ++k;
      if (k >= close || !is_ident(t[k].text)) continue;
      const std::string name = t[k].text;
      (stat ? cm.statics : cm.instrumented).insert(name);
      if (!stat) model.instrumented_names.insert(name);
      auto& throws = cm.declared_throws[name];
      for (++k; k < close; ++k) {
        if (t[k].text != "FAT_THROWS" || t[k + 1].text != "(") continue;
        std::size_t e = k + 2;
        const std::string type = read_qualified(t, e);
        if (!type.empty()) throws.push_back(type);
        k = e;
      }
    }
    i = close;
  }
}

/// Collects names of inline const methods whose bodies are verifiably
/// effect-free: `name(...) const { body }` where body contains no `throw`,
/// no FAT_ macro, and no call to an instrumented method name.
void harvest_clean_const(const Tokens& t, SourceModel& model) {
  for (std::size_t i = 2; i + 1 < t.size(); ++i) {
    if (t[i].text != "const" || t[i - 1].text != ")") continue;
    if (t[i + 1].text != "{") continue;
    // Match ')' back to its '('.
    int depth = 0;
    std::size_t open = t.size();
    for (std::size_t k = i - 1;; --k) {
      if (t[k].text == ")") ++depth;
      else if (t[k].text == "(" && --depth == 0) {
        open = k;
        break;
      }
      if (k == 0) break;
    }
    if (open >= t.size() || open == 0) continue;
    const std::string& name = t[open - 1].text;
    if (!is_ident(name) || keywords().count(name)) continue;
    const std::size_t end = match_forward(t, i + 1, "{", "}");
    if (end >= t.size()) continue;
    bool clean = true;
    for (std::size_t k = i + 2; k < end; ++k) {
      const std::string& b = t[k].text;
      if (b == "throw" || b.rfind("FAT_", 0) == 0 ||
          (model.instrumented_names.count(b) && k + 1 < end &&
           t[k + 1].text == "(")) {
        clean = false;
        break;
      }
    }
    if (clean) model.clean_const_names.insert(name);
  }
}

/// Harvests declared types for reflected field names: a token that names a
/// known field, is followed by `;`/`=`/`{` (a declaration, not a use), and
/// is preceded by a type token (identifier, `>`, `*` or `&`).  The type is
/// every token back to the previous declaration boundary.
/// Records the simple name of every class/struct declaration (including
/// forward declarations — a name is a name).
void harvest_class_names(const Tokens& t, SourceModel& model) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text == "enum") {
      // `enum X` / `enum class X` / `enum struct X`.
      std::size_t k = i + 1;
      if (k < t.size() &&
          (t[k].text == "class" || t[k].text == "struct"))
        ++k;
      if (k < t.size() && is_ident(t[k].text) && !keywords().count(t[k].text))
        model.enum_names.insert(t[k].text);
      continue;
    }
    if (t[i].text != "class" && t[i].text != "struct") continue;
    if (i > 0 && t[i - 1].text == "enum") continue;
    if (!is_ident(t[i + 1].text) || keywords().count(t[i + 1].text)) continue;
    const std::string& cls = t[i + 1].text;
    model.class_names.insert(cls);
    // Base-clause harvest: `class X [final] : [virtual|access] Base, ...`.
    // Bases may be qualified; only the simple (last) component is recorded.
    std::size_t k = i + 2;
    if (k < t.size() && t[k].text == "final") ++k;
    if (k >= t.size() || t[k].text != ":") continue;
    ++k;
    while (k < t.size()) {
      while (k < t.size() &&
             (t[k].text == "public" || t[k].text == "protected" ||
              t[k].text == "private" || t[k].text == "virtual"))
        ++k;
      std::string base, last;
      while (k < t.size() && (is_ident(t[k].text) || t[k].text == "::")) {
        if (is_ident(t[k].text)) last = t[k].text;
        base += t[k].text;
        ++k;
      }
      if (!last.empty() && !keywords().count(last))
        model.bases[cls].insert(last);
      // Skip template arguments of the base, if any.
      if (k < t.size() && t[k].text == "<") {
        int angle = 0;
        for (; k < t.size(); ++k) {
          if (t[k].text == "<") ++angle;
          else if (t[k].text == ">" && --angle == 0) { ++k; break; }
          else if (t[k].text == ">>" && (angle -= 2) <= 0) { ++k; break; }
        }
      }
      if (k < t.size() && t[k].text == ",") { ++k; continue; }
      break;
    }
  }
}

void harvest_declared_types(const Tokens& t, SourceModel& model) {
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i].text) || keywords().count(t[i].text)) continue;
    const std::string& next = t[i + 1].text;
    if (next != ";" && next != "=" && next != "{") continue;
    const std::string& prev = t[i - 1].text;
    static const std::set<std::string> builtins = {
        "int",  "bool",  "char",  "unsigned", "signed",
        "long", "short", "float", "double",   "auto"};
    const bool type_ish =
        prev == ">" || prev == ">>" || prev == "*" || prev == "&" ||
        (is_ident(prev) && (!keywords().count(prev) || builtins.count(prev)));
    if (!type_ish) continue;
    // Walk back over type tokens only; any non-type token (`=`, `+`,
    // `return`, ...) before a declaration boundary means this is an
    // expression, not a declaration — skip the site entirely rather than
    // record a junk type.  Commas and colons are boundaries only outside
    // template angle brackets.
    std::string type;
    int angle = 0;
    bool ok = true;
    for (std::size_t j = i; j-- > 0;) {
      const std::string& b = t[j].text;
      if (b == ">") ++angle;
      if (b == ">>") angle += 2;  // nested template closer is one token
      if (b == "<") {
        if (angle == 0) {
          ok = false;
          break;
        }
        --angle;
      }
      if (angle == 0 && (b == ";" || b == "{" || b == "}" || b == ":" ||
                         b == "(" || b == ")" || b == ","))
        break;
      const bool type_tok = b == ">" || b == ">>" || b == "<" || b == "*" ||
                            b == "&" || b == "::" || b == "," || is_ident(b);
      if (!type_tok) {
        ok = false;
        break;
      }
      type = b + (type.empty() ? "" : " ") + type;
    }
    if (!ok || type.empty()) continue;
    std::string& slot = model.declared_types[t[i].text];
    if (slot.empty())
      slot = type;
    else if (slot.find(type) == std::string::npos)
      slot += " | " + type;
  }
}

/// Splits a parameter-list token range into Params (tracks <> and ()
/// nesting so template arguments and nested parens don't break at commas).
std::vector<Param> parse_params(const Tokens& t, std::size_t open,
                                std::size_t close) {
  std::vector<Param> out;
  std::size_t start = open + 1;
  int angle = 0, paren = 0;
  auto flush = [&](std::size_t from, std::size_t to) {
    if (from >= to) return;
    Param p;
    std::string last_ident;
    for (std::size_t k = from; k < to; ++k) {
      const std::string& x = t[k].text;
      if (x == "const") p.is_const = true;
      else if (x == "&" || x == "&&") p.is_ref = true;
      else if (x == "*") p.is_ptr = true;
      else if (is_ident(x) && !keywords().count(x)) last_ident = x;
    }
    p.name = last_ident;
    out.push_back(p);
  };
  for (std::size_t k = start; k < close; ++k) {
    const std::string& x = t[k].text;
    if (x == "<") ++angle;
    else if (x == ">") angle = std::max(0, angle - 1);
    else if (x == ">>") angle = std::max(0, angle - 2);
    else if (x == "(") ++paren;
    else if (x == ")") --paren;
    else if (x == "," && angle == 0 && paren == 0) {
      flush(start, k);
      start = k + 1;
    }
  }
  flush(start, close);
  return out;
}

/// Walks one .cpp token stream collecting out-of-line function definitions.
void collect_definitions(const Tokens& t, const std::string& file,
                         SourceModel& model) {
  std::vector<std::string> ns;  // namespace stack entries ("" = anonymous)
  std::size_t i = 0;
  while (i < t.size()) {
    const std::string& tok = t[i].text;
    if (tok == "namespace") {
      std::size_t k = i + 1;
      const std::string name = read_qualified(t, k);
      if (k < t.size() && t[k].text == "{") {
        ns.push_back(name);
        i = k + 1;
        continue;
      }
      i = k + 1;  // namespace alias or using-directive fragment
      continue;
    }
    if (tok == "}") {
      if (!ns.empty()) ns.pop_back();
      ++i;
      continue;
    }
    if (tok == "class" || tok == "struct" || tok == "enum" ||
        tok == "union") {
      // Skip the whole type definition (or elaborated declaration).
      std::size_t k = i + 1;
      while (k < t.size() && t[k].text != "{" && t[k].text != ";") ++k;
      if (k < t.size() && t[k].text == "{")
        k = match_forward(t, k, "{", "}");
      i = k + 1;
      continue;
    }
    if (tok == "template") {  // skip template header's <...>
      std::size_t k = i + 1;
      if (k < t.size() && t[k].text == "<") {
        int depth = 0;
        for (; k < t.size(); ++k) {
          if (t[k].text == "<") ++depth;
          else if (t[k].text == ">" && --depth == 0) break;
          else if (t[k].text == ">>") depth -= 2;
          if (depth <= 0 && t[k].text != "<") break;
        }
      }
      i = k + 1;
      continue;
    }
    // Candidate function definition: find the next '(' before any ';'/'{'.
    std::size_t paren = t.size();
    bool has_operator = false;
    std::size_t k = i;
    for (; k < t.size(); ++k) {
      const std::string& x = t[k].text;
      if (x == "operator") has_operator = true;
      if (x == "(") {
        paren = k;
        break;
      }
      if (x == ";" || x == "{" || x == "}") break;
    }
    if (paren >= t.size()) {
      if (k < t.size() && t[k].text == "{") {
        // Unrecognised brace at scope (e.g. an initializer) — skip it.
        i = match_forward(t, k, "{", "}") + 1;
      } else {
        i = k + 1;  // plain declaration/definition without parens
      }
      continue;
    }
    const std::size_t close = match_forward(t, paren, "(", ")");
    if (close >= t.size()) {
      i = paren + 1;
      continue;
    }
    // Name and (optional) class chain directly before '('.
    std::string name, cls;
    if (!has_operator && paren > 0 && is_ident(t[paren - 1].text) &&
        !keywords().count(t[paren - 1].text)) {
      name = t[paren - 1].text;
      std::size_t b = paren - 1;
      while (b >= 2 && t[b - 1].text == "::" && is_ident(t[b - 2].text)) {
        cls = cls.empty() ? t[b - 2].text : t[b - 2].text + "::" + cls;
        b -= 2;
      }
    }
    // What follows the parameter list?
    std::size_t after = close + 1;
    bool is_const = false;
    while (after < t.size() &&
           (t[after].text == "const" || t[after].text == "noexcept" ||
            t[after].text == "override" || t[after].text == "final")) {
      if (t[after].text == "const") is_const = true;
      ++after;
    }
    // Function-try-block: `f() try { ... } catch (...) { ... }`.  The body
    // recorded below starts at the `try` keyword and runs through the last
    // catch clause, so downstream passes see the same try/catch structure a
    // body-level try statement would give them.
    bool fn_try = false;
    std::size_t try_pos = 0;
    if (after < t.size() && t[after].text == "try") {
      fn_try = true;
      try_pos = after;
      ++after;
    }
    if (after < t.size() && t[after].text == ":") {
      // Constructor init list: step over `member(init)` / `member{init}`
      // pairs until the body brace.
      std::size_t p = after + 1;
      while (p < t.size()) {
        (void)read_qualified(t, p);
        if (p < t.size() && (t[p].text == "(" || t[p].text == "{")) {
          const bool par = t[p].text == "(";
          p = match_forward(t, p, par ? "(" : "{", par ? ")" : "}") + 1;
        } else {
          break;
        }
        if (p < t.size() && t[p].text == ",") {
          ++p;
          continue;
        }
        break;
      }
      after = p;
      // Constructors are never effect-analysis subjects; skip the body.
      if (after < t.size() && t[after].text == "{") {
        i = match_forward(t, after, "{", "}") + 1;
        continue;
      }
      i = after + 1;
      continue;
    }
    if (after >= t.size() || t[after].text != "{") {
      i = close + 1;  // declaration (or expression) — keep scanning after ')'
      continue;
    }
    const std::size_t body_end = match_forward(t, after, "{", "}");
    if (body_end >= t.size()) {
      i = after + 1;
      continue;
    }
    std::size_t def_end = body_end;  // last token this definition consumed
    if (fn_try) {
      std::size_t p = body_end + 1;
      while (p < t.size() && t[p].text == "catch") {
        std::size_t cp = p + 1;
        if (cp >= t.size() || t[cp].text != "(") break;
        const std::size_t cc = match_forward(t, cp, "(", ")");
        if (cc + 1 >= t.size() || t[cc + 1].text != "{") break;
        const std::size_t cb = match_forward(t, cc + 1, "{", "}");
        if (cb >= t.size()) break;
        def_end = cb;
        p = cb + 1;
      }
    }
    if (!name.empty() && !has_operator) {
      FunctionDef def;
      std::string prefix;
      for (const std::string& part : ns) {
        if (part.empty()) continue;
        prefix += prefix.empty() ? part : "::" + part;
      }
      if (!cls.empty())
        def.class_name = prefix.empty() ? cls : prefix + "::" + cls;
      def.name = name;
      def.is_const = is_const;
      def.params = parse_params(t, paren, close);
      if (fn_try)
        def.body.assign(t.begin() + static_cast<std::ptrdiff_t>(try_pos),
                        t.begin() + static_cast<std::ptrdiff_t>(def_end) + 1);
      else
        def.body.assign(t.begin() + static_cast<std::ptrdiff_t>(after) + 1,
                        t.begin() + static_cast<std::ptrdiff_t>(body_end));
      def.file = file;
      model.functions.push_back(std::move(def));
    }
    i = def_end + 1;
  }
}

}  // namespace

SourceModel scan_sources(const std::string& root) {
  namespace fs = std::filesystem;
  if (!fs::exists(root))
    throw std::runtime_error("analyze: no such source root: " + root);

  std::vector<fs::path> headers, sources;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".h") headers.push_back(entry.path());
    else if (ext == ".cpp" || ext == ".cc") sources.push_back(entry.path());
  }
  std::sort(headers.begin(), headers.end());
  std::sort(sources.begin(), sources.end());

  auto slurp = [](const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };

  SourceModel model;
  std::vector<std::pair<std::string, Tokens>> header_tokens, source_tokens;
  for (const auto& p : headers)
    header_tokens.emplace_back(fs::relative(p, root).string(),
                               tokenize(slurp(p)));
  for (const auto& p : sources)
    source_tokens.emplace_back(fs::relative(p, root).string(),
                               tokenize(slurp(p)));

  // Macro metadata first (instrumented_names must be complete before the
  // clean-const harvest can veto accessors that call instrumented code).
  for (const auto& [file, toks] : header_tokens) {
    harvest_macros(toks, model);
    model.files.push_back(file);
  }
  for (const auto& [file, toks] : source_tokens) {
    harvest_macros(toks, model);
    model.files.push_back(file);
  }
  for (const auto& [file, toks] : header_tokens) {
    harvest_clean_const(toks, model);
    harvest_class_names(toks, model);
    harvest_declared_types(toks, model);
  }
  for (const auto& [file, toks] : source_tokens) {
    harvest_class_names(toks, model);
    harvest_declared_types(toks, model);
    collect_definitions(toks, file, model);
  }
  return model;
}

}  // namespace fatomic::analyze
