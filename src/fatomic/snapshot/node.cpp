#include "fatomic/snapshot/node.hpp"

#include <functional>
#include <sstream>

namespace fatomic::snapshot {

namespace {

void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

const char* kind_name(NodeKind k) {
  switch (k) {
    case NodeKind::Primitive:
      return "prim";
    case NodeKind::Object:
      return "object";
    case NodeKind::Sequence:
      return "seq";
    case NodeKind::Pointer:
      return "ptr";
    case NodeKind::NullPointer:
      return "null";
  }
  return "?";
}

struct PrimPrinter {
  std::ostream& os;
  void operator()(bool v) { os << (v ? "true" : "false"); }
  void operator()(char v) { os << '\'' << v << '\''; }
  void operator()(std::int64_t v) { os << v; }
  void operator()(std::uint64_t v) { os << v << 'u'; }
  void operator()(F32Bits v) { os << v.value() << 'f'; }
  void operator()(F64Bits v) { os << v.value(); }
  void operator()(const std::string& v) { os << '"' << v << '"'; }
};

struct PrimHasher {
  std::size_t operator()(bool v) const { return std::hash<bool>{}(v); }
  std::size_t operator()(char v) const { return std::hash<char>{}(v); }
  std::size_t operator()(std::int64_t v) const {
    return std::hash<std::int64_t>{}(v);
  }
  std::size_t operator()(std::uint64_t v) const {
    return std::hash<std::uint64_t>{}(v);
  }
  std::size_t operator()(F32Bits v) const {
    return std::hash<std::uint32_t>{}(v.bits);
  }
  std::size_t operator()(F64Bits v) const {
    return std::hash<std::uint64_t>{}(v.bits);
  }
  std::size_t operator()(const std::string& v) const {
    return std::hash<std::string>{}(v);
  }
};

}  // namespace

std::size_t Snapshot::hash() const {
  std::size_t seed = nodes_.size();
  hash_combine(seed, root_);
  for (const Node& n : nodes_) {
    hash_combine(seed, static_cast<std::size_t>(n.kind));
    hash_combine(seed, std::hash<std::string_view>{}(n.type_name));
    hash_combine(seed, n.value.index());
    hash_combine(seed, std::visit(PrimHasher{}, n.value));
    hash_combine(seed, n.pointee);
    hash_combine(seed, n.owned_edge ? 1u : 0u);
    for (NodeId c : n.children) hash_combine(seed, c);
  }
  return seed;
}

std::string Snapshot::to_string() const {
  std::ostringstream os;
  os << "snapshot{root=" << root_ << ", nodes=" << nodes_.size() << "}\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    os << "  #" << i << ' ' << kind_name(n.kind) << ' ' << n.type_name;
    switch (n.kind) {
      case NodeKind::Primitive:
        os << " = ";
        std::visit(PrimPrinter{os}, n.value);
        break;
      case NodeKind::Object:
      case NodeKind::Sequence:
        os << " [";
        for (std::size_t c = 0; c < n.children.size(); ++c) {
          if (c) os << ' ';
          os << '#' << n.children[c];
        }
        os << ']';
        break;
      case NodeKind::Pointer:
        os << (n.owned_edge ? " owns" : " ->") << " #" << n.pointee;
        break;
      case NodeKind::NullPointer:
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace fatomic::snapshot
