// Shared fixture types for the fatomic test suites: reflected classes
// covering primitives, containers, owned/alias pointers, smart pointers,
// cycles and polymorphism.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fatomic/memory/rc_ptr.hpp"
#include "fatomic/reflect/reflect.hpp"

namespace testing_types {

struct Plain {
  int i = 0;
  double d = 0.0;
  bool b = false;
  std::string s;
};

struct Nested {
  Plain inner;
  std::vector<int> values;
  std::map<std::string, int> table;
  std::optional<int> opt;
};

/// Singly linked node with an *owned* raw next pointer.  Per the restore
/// conventions the node destructor does not cascade; owners free iteratively.
struct Link {
  int value = 0;
  Link* next = nullptr;
};

struct LinkList {
  Link* head = nullptr;  // owned
  int size = 0;

  ~LinkList() {
    Link* cur = head;
    while (cur != nullptr) {
      Link* next = cur->next;
      delete cur;
      cur = next;
    }
  }
  LinkList() = default;
  LinkList(const LinkList&) = delete;
  LinkList& operator=(const LinkList&) = delete;

  void push_front(int v) {
    head = new Link{v, head};
    ++size;
  }
};

/// Aliasing: two raw pointers into the same graph.
struct AliasPair {
  std::unique_ptr<Plain> owner;
  Plain* alias = nullptr;  // non-owned; may point at *owner or elsewhere
};

/// Cycle through owned raw pointers: a ring of nodes.
struct RingNode {
  int value = 0;
  RingNode* next = nullptr;  // owned edge, forms a cycle
};

struct Ring {
  RingNode* entry = nullptr;  // owned
  int count = 0;

  ~Ring() { clear(); }
  Ring() = default;
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  void insert(int v) {
    auto* n = new RingNode{v, nullptr};
    if (entry == nullptr) {
      n->next = n;
      entry = n;
    } else {
      n->next = entry->next;
      entry->next = n;
    }
    ++count;
  }

  void clear() {
    if (entry == nullptr) return;
    RingNode* cur = entry->next;
    while (cur != entry) {
      RingNode* next = cur->next;
      delete cur;
      cur = next;
    }
    delete entry;
    entry = nullptr;
    count = 0;
  }
};

/// Smart-pointer chain via rc_ptr.
struct RcNode {
  int value = 0;
  fatomic::memory::rc_ptr<RcNode> next;
};

struct RcList {
  fatomic::memory::rc_ptr<RcNode> head;
  int size = 0;

  void push_front(int v) {
    auto n = fatomic::memory::make_rc<RcNode>();
    n->value = v;
    n->next = head;
    head = n;
    ++size;
  }
};

/// Polymorphic hierarchy.
struct Shape {
  virtual ~Shape() = default;
  int id = 0;
};

struct Circle : Shape {
  double radius = 0.0;
};

struct Rect : Shape {
  double w = 0.0;
  double h = 0.0;
};

struct Drawing {
  std::vector<std::unique_ptr<Shape>> shapes;
  std::string title;
};

/// Shared ownership diamond: two shared_ptrs to one pointee.
struct SharedDiamond {
  std::shared_ptr<Plain> left;
  std::shared_ptr<Plain> right;  // may alias left
};

}  // namespace testing_types

FAT_REFLECT(testing_types::Plain, FAT_FIELD(testing_types::Plain, i),
            FAT_FIELD(testing_types::Plain, d),
            FAT_FIELD(testing_types::Plain, b),
            FAT_FIELD(testing_types::Plain, s));

FAT_REFLECT(testing_types::Nested, FAT_FIELD(testing_types::Nested, inner),
            FAT_FIELD(testing_types::Nested, values),
            FAT_FIELD(testing_types::Nested, table),
            FAT_FIELD(testing_types::Nested, opt));

FAT_REFLECT(testing_types::Link, FAT_FIELD(testing_types::Link, value),
            FAT_OWNED(testing_types::Link, next));

FAT_REFLECT(testing_types::LinkList, FAT_OWNED(testing_types::LinkList, head),
            FAT_FIELD(testing_types::LinkList, size));

FAT_REFLECT(testing_types::AliasPair,
            FAT_FIELD(testing_types::AliasPair, owner),
            FAT_FIELD(testing_types::AliasPair, alias));

FAT_REFLECT(testing_types::RingNode,
            FAT_FIELD(testing_types::RingNode, value),
            FAT_OWNED(testing_types::RingNode, next));

FAT_REFLECT(testing_types::Ring, FAT_OWNED(testing_types::Ring, entry),
            FAT_FIELD(testing_types::Ring, count));

FAT_REFLECT(testing_types::RcNode, FAT_FIELD(testing_types::RcNode, value),
            FAT_FIELD(testing_types::RcNode, next));

FAT_REFLECT(testing_types::RcList, FAT_FIELD(testing_types::RcList, head),
            FAT_FIELD(testing_types::RcList, size));

FAT_REFLECT(testing_types::Circle, FAT_FIELD(testing_types::Circle, id),
            FAT_FIELD(testing_types::Circle, radius));

FAT_REFLECT(testing_types::Rect, FAT_FIELD(testing_types::Rect, id),
            FAT_FIELD(testing_types::Rect, w),
            FAT_FIELD(testing_types::Rect, h));

FAT_REFLECT(testing_types::Drawing,
            FAT_FIELD(testing_types::Drawing, shapes),
            FAT_FIELD(testing_types::Drawing, title));

FAT_REFLECT(testing_types::SharedDiamond,
            FAT_FIELD(testing_types::SharedDiamond, left),
            FAT_FIELD(testing_types::SharedDiamond, right));
