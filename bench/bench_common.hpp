// Shared helpers for the evaluation benches: run a full injection campaign
// for one named subject application and package the result for the report
// formatters, plus a tiny JSON emitter so every bench leaves a
// machine-readable BENCH_<name>.json artifact next to its stdout table.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "fatomic/detect/classify.hpp"
#include "fatomic/detect/experiment.hpp"
#include "fatomic/report/json.hpp"
#include "fatomic/report/report.hpp"
#include "fatomic/snapshot/backend.hpp"
#include "fatomic/unwind/provenance.hpp"
#include "subjects/apps/apps.hpp"

namespace bench_common {

namespace detail {

inline std::string number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace detail

/// Minimal append-only JSON object builder.  Key order is insertion order;
/// nesting goes through put_raw() with another builder's dump().
class JsonObject {
 public:
  template <class T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonObject& put(const std::string& k, T v) {
    key(k);
    buf_ += std::to_string(v);
    return *this;
  }
  JsonObject& put(const std::string& k, bool v) {
    key(k);
    buf_ += v ? "true" : "false";
    return *this;
  }
  JsonObject& put(const std::string& k, double v) {
    key(k);
    buf_ += detail::number(v);
    return *this;
  }
  JsonObject& put(const std::string& k, const std::string& v) {
    key(k);
    buf_ += '"' + fatomic::report::json_escape(v) + '"';
    return *this;
  }
  JsonObject& put(const std::string& k, const char* v) {
    return put(k, std::string(v));
  }
  /// Inserts `json` verbatim — for nested objects/arrays.
  JsonObject& put_raw(const std::string& k, const std::string& json) {
    key(k);
    buf_ += json;
    return *this;
  }
  std::string dump() const { return buf_ + "}"; }

 private:
  void key(const std::string& k) {
    if (!first_) buf_ += ',';
    first_ = false;
    buf_ += '"' + fatomic::report::json_escape(k) + "\":";
  }
  std::string buf_ = "{";
  bool first_ = true;
};

/// Minimal JSON array builder; elements are pre-rendered JSON values.
class JsonArray {
 public:
  JsonArray& add_raw(const std::string& json) {
    if (!first_) buf_ += ',';
    first_ = false;
    buf_ += json;
    return *this;
  }
  std::string dump() const { return buf_ + "]"; }

 private:
  std::string buf_ = "[";
  bool first_ = true;
};

/// Run metadata stamped into every bench artifact: which build produced the
/// numbers (git describe, baked in by bench/CMakeLists.txt), under which
/// checkpoint backend they ran (the process default honours
/// FATOMIC_CHECKPOINT_BACKEND), and the machine's parallelism — the three
/// knobs that make two BENCH_*.json files incomparable when they differ.
inline std::string bench_meta_json() {
  return JsonObject{}
      // Artifact schema counter, shared with campaign_json: bumped to 2 when
      // the "recovery" stats section and recovery bench artifacts landed.
      .put("schema_version", 2)
#ifdef FATOMIC_GIT_DESCRIBE
      .put("git", FATOMIC_GIT_DESCRIBE)
#else
      .put("git", "unknown")
#endif
      .put("checkpoint_backend",
           fatomic::snapshot::to_string(fatomic::snapshot::default_backend()))
      .put("jobs", std::thread::hardware_concurrency())
      .put("provenance_available", fatomic::unwind::available())
      .dump();
}

/// Writes `json` to BENCH_<bench>.json in the working directory and notes
/// the artifact on stdout so CI logs show where the data went.  Every
/// artifact is a top-level object; a "meta" section (bench_meta_json) is
/// stamped into it here so no bench can forget it.
inline void write_bench_json(const std::string& bench,
                             const std::string& json) {
  std::string stamped = json;
  if (!stamped.empty() && stamped.back() == '}') {
    stamped.pop_back();
    if (stamped.size() > 1) stamped += ',';
    stamped += "\"meta\":" + bench_meta_json() + "}";
  }
  const std::string path = "BENCH_" + bench + ".json";
  std::ofstream out(path);
  out << stamped << '\n';
  if (out)
    std::cout << "bench json: " << path << '\n';
  else
    std::cerr << "bench json: FAILED to write " << path << '\n';
}

/// One JSON row per app campaign — the shared shape for the table/figure
/// bench artifacts.
inline std::string app_results_json(
    const std::vector<fatomic::report::AppResult>& apps) {
  using fatomic::detect::MethodClass;
  JsonArray rows;
  for (const auto& r : apps)
    rows.add_raw(
        JsonObject{}
            .put("name", r.name)
            .put("language", r.language)
            .put("runs", r.campaign.runs.size())
            .put("calls", r.campaign.total_calls())
            .put("methods", r.classification.methods.size())
            .put("atomic", r.classification.count_methods(MethodClass::Atomic))
            .put("conditional", r.classification.count_methods(
                                    MethodClass::ConditionalNonAtomic))
            .put("pure",
                 r.classification.count_methods(MethodClass::PureNonAtomic))
            .dump());
  return rows.dump();
}

inline fatomic::report::AppResult run_app_campaign(
    const subjects::apps::App& app) {
  fatomic::detect::Experiment exp(app.program);
  fatomic::report::AppResult r;
  r.name = app.name;
  r.language = app.language;
  r.campaign = exp.run();
  r.classification = fatomic::detect::classify(r.campaign);
  return r;
}

inline std::vector<fatomic::report::AppResult> run_suite(
    const std::string& language) {
  std::vector<fatomic::report::AppResult> out;
  for (const auto& app : subjects::apps::apps_of(language))
    out.push_back(run_app_campaign(app));
  return out;
}

inline std::vector<fatomic::report::AppResult> run_all() {
  std::vector<fatomic::report::AppResult> out;
  for (const auto& app : subjects::apps::all_apps())
    out.push_back(run_app_campaign(app));
  return out;
}

}  // namespace bench_common
