file(REMOVE_RECURSE
  "../bench/bench_casestudy"
  "../bench/bench_casestudy.pdb"
  "CMakeFiles/bench_casestudy.dir/bench_casestudy.cpp.o"
  "CMakeFiles/bench_casestudy.dir/bench_casestudy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
