#include "fatomic/detect/callgraph.hpp"

#include <algorithm>
#include <sstream>

namespace fatomic::detect {

CallGraph CallGraph::from(const Campaign& campaign) {
  CallGraph g;
  for (const auto& [edge, count] : campaign.call_edges) {
    const auto& [caller, callee] = edge;
    const std::string from = caller ? caller->qualified_name() : kRoot;
    g.edges_[from][callee->qualified_name()] += count;
  }
  return g;
}

std::vector<std::string> CallGraph::callees_of(
    const std::string& caller) const {
  std::vector<std::string> out;
  if (auto it = edges_.find(caller); it != edges_.end())
    for (const auto& [callee, count] : it->second) out.push_back(callee);
  return out;
}

std::vector<std::string> CallGraph::callers_of(
    const std::string& callee) const {
  std::vector<std::string> out;
  for (const auto& [caller, callees] : edges_)
    if (callees.count(callee)) out.push_back(caller);
  return out;
}

std::size_t CallGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& [caller, callees] : edges_) n += callees.size();
  return n;
}

std::string dot_quote(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 2);
  out.push_back('"');
  for (const char c : name) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CallGraph::to_dot(const Classification* cls) const {
  std::ostringstream os;
  os << "digraph calls {\n  rankdir=LR;\n  node [shape=box];\n";
  if (cls != nullptr) {
    for (const auto& m : cls->methods) {
      if (m.cls == MethodClass::PureNonAtomic)
        os << "  " << dot_quote(m.method->qualified_name())
           << " [color=red, style=filled, fillcolor=mistyrose];\n";
      else if (m.cls == MethodClass::ConditionalNonAtomic)
        os << "  " << dot_quote(m.method->qualified_name())
           << " [color=orange, style=filled, fillcolor=papayawhip];\n";
    }
  }
  for (const auto& [caller, callees] : edges_)
    for (const auto& [callee, count] : callees)
      os << "  " << dot_quote(caller) << " -> " << dot_quote(callee)
         << " [label=" << count << "];\n";
  os << "}\n";
  return os.str();
}

Blame blame_analysis(const Campaign& campaign) {
  Blame blame;
  for (const RunRecord& run : campaign.runs) {
    if (!run.injected || run.injected_method == nullptr) continue;
    const std::string site = run.injected_method->qualified_name();
    for (const weave::Mark& mark : run.marks) {
      if (mark.atomic) continue;
      blame.sites_of[mark.method->qualified_name()].insert(site);
    }
  }
  return blame;
}

std::map<std::string, std::string> Blame::single_site_victims() const {
  std::map<std::string, std::string> out;
  for (const auto& [victim, sites] : sites_of)
    if (sites.size() == 1) out.emplace(victim, *sites.begin());
  return out;
}

std::vector<std::string> suggest_exception_free(const Campaign& campaign) {
  const Blame blame = blame_analysis(campaign);
  std::map<std::string, std::size_t> victims_per_site;
  for (const auto& [victim, site] : blame.single_site_victims())
    ++victims_per_site[site];
  std::vector<std::pair<std::string, std::size_t>> ranked(
      victims_per_site.begin(), victims_per_site.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (const auto& [site, victims] : ranked) out.push_back(site);
  return out;
}

}  // namespace fatomic::detect
