// Request-serving loop subject (net family): a Server owns a Transport and
// handles requests end to end — validate, route, journal, send, receive,
// count.  handle() journals *before* the fallible transport steps, so an
// exception mid-request strands a journal entry without its processed
// count: classically failure non-atomic, and the live target the recovery
// policy engine's bench (bench/bench_recovery.cpp) drives under
// production-mode fault injection.  invariants_hold() is the uninstrumented
// zero-corruption validator that bench and tests check after every storm.
#pragma once

#include <string>

#include "fatomic/reflect/reflect.hpp"
#include "fatomic/weave/macros.hpp"
#include "subjects/net/transport.hpp"

namespace subjects::net {

class Server {
 public:
  Server() { FAT_CTOR_ENTRY(); }

  int processed() const { return processed_; }
  int endpoints() const { return transport_.endpoints(); }
  const std::string& journal() const { return journal_; }

  /// Opens `count` endpoints ("ep0".."epN-1"); throws NetError on a
  /// duplicate (partial progress: already-opened endpoints stay open).
  void provision(int count);

  /// Serves one request: validate, route to an endpoint, journal the
  /// request, ship it through the transport and echo the reply back.
  /// Throws NetError on an empty request or a transport failure.
  std::string handle(const std::string& request);

  /// Uninstrumented state validator: every journaled request was fully
  /// processed, every sent message was drained, nothing is in flight.
  /// False means a failed request left partial state behind — exactly what
  /// rollback-based recovery must prevent.
  bool invariants_hold() const {
    int entries = 0;
    for (char c : journal_)
      if (c == ';') ++entries;
    return entries == processed_ && transport_.sent() == processed_ &&
           transport_.total_pending() == 0;
  }

 private:
  /// Uninstrumented pure routing helper: deterministic endpoint choice.
  std::string route(const std::string& request) const;

  FAT_REFLECT_FRIEND(Server);
  FAT_CTOR_INFO(subjects::net::Server);
  FAT_METHOD_INFO(subjects::net::Server, provision,
                  FAT_THROWS(subjects::net::NetError));
  FAT_METHOD_INFO(subjects::net::Server, handle,
                  FAT_THROWS(subjects::net::NetError));

  Transport transport_;
  std::string journal_;
  int processed_ = 0;
};

}  // namespace subjects::net

FAT_REFLECT(subjects::net::Server,
            FAT_FIELD(subjects::net::Server, transport_),
            FAT_FIELD(subjects::net::Server, journal_),
            FAT_FIELD(subjects::net::Server, processed_));
