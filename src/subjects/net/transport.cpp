#include "subjects/net/transport.hpp"

namespace subjects::net {

void Channel::deliver(const std::string& msg) {
  FAT_INVOKE(deliver, [&] {
    if (closed_) throw NetError("channel closed");
    inbox_.push_back(msg);
    ++delivered_;
  });
}

std::string Channel::take() {
  return FAT_INVOKE(take, [&] {
    if (inbox_.empty()) throw NetError("channel empty");
    std::string msg = std::move(inbox_.front());
    inbox_.pop_front();
    return msg;
  });
}

void Channel::close() {
  FAT_INVOKE(close, [&] { closed_ = true; });
}

void Transport::open(const std::string& endpoint) {
  FAT_INVOKE(open, [&] {
    if (channels_.count(endpoint)) throw NetError("endpoint exists");
    channels_.emplace(endpoint, std::make_unique<Channel>());
  });
}

Channel& Transport::channel(const std::string& endpoint) {
  auto it = channels_.find(endpoint);
  if (it == channels_.end()) throw NetError("unknown endpoint: " + endpoint);
  return *it->second;
}

void Transport::send(const std::string& endpoint, const std::string& msg) {
  FAT_INVOKE(send, [&] {
    Channel& ch = channel(endpoint);  // may throw before any mutation
    ch.deliver(msg);                  // the fallible step ...
    ++sent_;                          // ... counted only afterwards
  });
}

std::string Transport::recv(const std::string& endpoint) {
  return FAT_INVOKE(recv, [&] { return channel(endpoint).take(); });
}

void Transport::broadcast(const std::string& msg) {
  FAT_INVOKE(broadcast, [&] {
    for (auto& [name, ch] : channels_) {
      ch->deliver(msg);  // partial delivery on failure
      ++sent_;
    }
  });
}

void Transport::close_all() {
  FAT_INVOKE(close_all, [&] {
    for (auto& [name, ch] : channels_) ch->close();  // partial on failure
  });
}

}  // namespace subjects::net
