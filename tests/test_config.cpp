// fatomic::Config — the unified builder must reproduce the legacy knob
// structs exactly, and the deprecated adapters must keep compiling (they
// survive one release as migration shims).
#include "fatomic/config.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "fatomic/detect/classify.hpp"
#include "fatomic/detect/experiment.hpp"
#include "fatomic/mask/masker.hpp"
#include "fatomic/report/json.hpp"
#include "testing/synthetic.hpp"

namespace detect = fatomic::detect;
namespace report = fatomic::report;
namespace weave = fatomic::weave;

namespace {

class ConfigTest : public ::testing::Test {
 protected:
  void TearDown() override {
    auto& rt = weave::Runtime::instance();
    rt.set_mode(weave::Mode::Direct);
    rt.set_wrap_predicate(nullptr);
    rt.trace.disable();
  }
};

}  // namespace

TEST_F(ConfigTest, BuilderSettersChainAndGettersReflect) {
  fatomic::Config cfg;
  cfg.jobs(8)
      .max_runs(42)
      .record_diffs(true)
      .validate_checkpoints(true)
      .prune_atomic({"A::f"})
      .exception_free("A::g")
      .no_wrap("A::h")
      .tracing(true);
  EXPECT_EQ(cfg.jobs(), 8u);
  EXPECT_TRUE(cfg.tracing());
  EXPECT_FALSE(cfg.masked());
  const detect::CampaignSettings& s = cfg.campaign_settings();
  EXPECT_EQ(s.max_runs, 42u);
  EXPECT_TRUE(s.record_diffs);
  EXPECT_TRUE(s.validate_checkpoints);
  EXPECT_EQ(s.prune_atomic, (std::set<std::string>{"A::f"}));
  EXPECT_TRUE(s.trace);
  EXPECT_EQ(cfg.policy().exception_free.count("A::g"), 1u);
  EXPECT_EQ(cfg.policy().no_wrap.count("A::h"), 1u);
}

TEST_F(ConfigTest, MaskInstallsPredicateAndFlipsMasked) {
  fatomic::Config cfg;
  cfg.mask([](const weave::MethodInfo&) { return true; });
  EXPECT_TRUE(cfg.masked());
  EXPECT_TRUE(cfg.campaign_settings().masked);
  ASSERT_TRUE(static_cast<bool>(cfg.campaign_settings().wrap));
}

TEST_F(ConfigTest, ConfigCampaignMatchesSettingsCampaign) {
  fatomic::Config cfg;
  cfg.jobs(2);
  detect::Campaign via_config =
      detect::Experiment(synthetic::workload, cfg).run();

  detect::CampaignSettings settings;
  settings.jobs = 2;
  detect::Campaign via_settings =
      detect::Experiment(synthetic::workload, settings).run();

  EXPECT_EQ(report::campaign_json(via_config),
            report::campaign_json(via_settings));
}

TEST_F(ConfigTest, PolicyFlowsIntoClassification) {
  fatomic::Config cfg;
  cfg.exception_free("synthetic::Account::helper");
  detect::Campaign c = detect::Experiment(synthetic::workload, cfg).run();
  // The policy is carried by the config, not the campaign — classify with it.
  auto with = detect::classify(c, cfg.policy());
  auto without = detect::classify(c);
  EXPECT_LE(with.nonatomic_names().size(), without.nonatomic_names().size());
}

TEST_F(ConfigTest, ConfigDrivenMaskVerification) {
  auto cls = detect::classify(detect::Experiment(synthetic::workload).run());
  fatomic::Config cfg;
  cfg.jobs(2).mask(fatomic::mask::wrap_pure(cls));
  const auto verified =
      fatomic::mask::verify_masked_full(synthetic::workload, cfg);
  EXPECT_TRUE(verified.classification.nonatomic_names().empty());
}

TEST_F(ConfigTest, ConfigMaskVerificationMatchesLegacyPath) {
  auto cls = detect::classify(detect::Experiment(synthetic::workload).run());
  auto wrap = fatomic::mask::wrap_pure(cls);

  fatomic::Config cfg;
  cfg.mask(wrap);
  const auto via_config =
      fatomic::mask::verify_masked_full(synthetic::workload, cfg);
  const auto via_legacy =
      fatomic::mask::verify_masked_full(synthetic::workload, wrap);
  EXPECT_EQ(report::campaign_json(via_config.campaign),
            report::campaign_json(via_legacy.campaign));
}

// The deprecated adapters must stay source- and behaviour-compatible for one
// release; this is the only translation unit that intentionally uses them.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST_F(ConfigTest, DeprecatedOptionsAdapterStillWorks) {
  detect::Options opts;
  opts.jobs = 2;
  detect::Campaign via_adapter =
      detect::Experiment(synthetic::workload, opts).run();
  detect::Campaign via_config =
      detect::Experiment(synthetic::workload, fatomic::Config().jobs(2)).run();
  EXPECT_EQ(report::campaign_json(via_adapter),
            report::campaign_json(via_config));
}

TEST_F(ConfigTest, DeprecatedMaskOptionsAdapterStillWorks) {
  auto cls = detect::classify(detect::Experiment(synthetic::workload).run());
  auto wrap = fatomic::mask::wrap_pure(cls);
  fatomic::mask::MaskOptions opts;
  opts.jobs = 2;
  const auto verified =
      fatomic::mask::verify_masked_full(synthetic::workload, wrap, {}, opts);
  EXPECT_TRUE(verified.classification.nonatomic_names().empty());
}

#pragma GCC diagnostic pop
