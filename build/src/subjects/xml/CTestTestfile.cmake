# CMake generated Testfile for 
# Source directory: /root/repo/src/subjects/xml
# Build directory: /root/repo/build/src/subjects/xml
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
