// The named subject applications of the paper's evaluation (Table 1):
// six C++/Self* applications and ten Java-suite applications, each exposed
// as a deterministic, self-contained workload function suitable for the
// injection campaign (every run constructs fresh objects).
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace subjects::apps {

struct App {
  std::string name;
  std::string language;  ///< "C++" or "Java" — which suite it belongs to
  std::function<void()> program;
};

/// All applications, in the paper's Table 1 order.
const std::vector<App>& all_apps();

/// Applications of one suite ("C++" or "Java").
std::vector<App> apps_of(const std::string& language);

/// Lookup by name; throws std::out_of_range for unknown names.
const App& app(const std::string& name);

// Individual workloads (also used directly by tests/examples).
void run_adaptor_chain();
void run_std_q();
void run_xml2ctcp();
void run_xml2cviasc1();
void run_xml2cviasc2();
void run_xml2xml1();

void run_circular_list();
void run_dynarray();
void run_hashed_map();
void run_hashed_set();
void run_ll_map();
void run_linked_buffer();
void run_linked_list();
void run_linked_list_fixed();  ///< the case-study repaired variant (§6.1)
void run_rb_map();
void run_rb_tree();
void run_regexp();

/// Mis-declared demo subject (lint_demo.hpp) — reachable via
/// app("lintDemo"), excluded from all_apps() so suite sweeps stay clean.
void run_lint_demo();

/// Transport/Channel workload (net family) — reachable via app("netDemo");
/// kept out of all_apps() (not a Table 1 subject) but swept by the CLI's
/// --all --cross-check gate so the static prune set is validated against
/// every subject family.
void run_net_demo();

/// Request-serving loop over Server/Transport — reachable via
/// app("ServerDemo"); kept out of all_apps() (not a Table 1 subject) but
/// swept by the CLI gate checks, and the live target bench_recovery drives
/// under production-mode fault injection (DESIGN.md §14).
void run_server_demo();

}  // namespace subjects::apps
