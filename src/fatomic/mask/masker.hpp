// The masking phase (Figure 1, steps 4-5): derives the set of methods whose
// calls are replaced by atomicity wrappers, installs it into the runtime,
// and verifies the corrected program by re-running the injection campaign
// against the masked program.
#pragma once

#include <functional>
#include <memory>

#include "fatomic/analyze/static_report.hpp"
#include "fatomic/detect/classify.hpp"
#include "fatomic/detect/experiment.hpp"
#include "fatomic/weave/runtime.hpp"

namespace fatomic {
class Config;
}

namespace fatomic::mask {

/// Wrap only the pure failure non-atomic methods (minus policy.no_wrap).
/// Sufficient: once every pure method is failure atomic, every conditional
/// method is atomic by Definition 3 (induction over the call graph).
/// Warns on stderr when a no_wrap entry names a method the registry has
/// never seen (detect::unknown_policy_names) — a typo excludes nothing.
weave::Runtime::WrapPredicate wrap_pure(const detect::Classification& cls,
                                        const detect::Policy& policy = {});

/// Wrap every failure non-atomic method (pure and conditional).  More
/// checkpointing than necessary — used as the conservative baseline and by
/// the ablation bench.
weave::Runtime::WrapPredicate wrap_all_nonatomic(
    const detect::Classification& cls, const detect::Policy& policy = {});

/// Converts the static report's write-set plans into the runtime's PlanMap
/// (field-granular checkpointing, DESIGN.md §8).  ⊤ verdicts are omitted —
/// an absent entry already means "full checkpoint".
std::shared_ptr<const weave::PlanMap> make_plans(
    const analyze::StaticReport& report);

/// RAII: switches the runtime to the corrected program P_C — Mask mode plus
/// the given wrap predicate — for the lifetime of the scope.  The previously
/// installed predicate (and checkpoint-plan state, for the plan-taking
/// overload) is restored on exit.
class MaskedScope {
 public:
  explicit MaskedScope(weave::Runtime::WrapPredicate wrap);
  /// P_C with field-granular checkpoints: additionally installs `plans`,
  /// the completeness-validator flag, the full-checkpoint backend and
  /// (optionally) a recovery policy table for the scope's lifetime.
  MaskedScope(weave::Runtime::WrapPredicate wrap,
              std::shared_ptr<const weave::PlanMap> plans,
              bool validate = false,
              snapshot::BackendKind backend = snapshot::default_backend(),
              std::shared_ptr<const recovery::PolicyTable> policies = nullptr);
  ~MaskedScope();
  MaskedScope(const MaskedScope&) = delete;
  MaskedScope& operator=(const MaskedScope&) = delete;

 private:
  weave::ScopedMode mode_;
  weave::Runtime::WrapPredicate saved_;
  std::shared_ptr<const weave::PlanMap> saved_plans_;
  bool saved_validate_;
  snapshot::BackendKind saved_backend_;
  std::shared_ptr<const recovery::PolicyTable> saved_policies_;
};

/// Checkpointing configuration for a mask-verify campaign.  Like
/// detect::CampaignSettings this is the internal carrier — the supported
/// entry point is fatomic::Config plus the Config overload of
/// verify_masked_full below.
struct VerifySettings {
  /// Field-granular checkpoint plans (mask::make_plans); null = full
  /// checkpoints everywhere.
  std::shared_ptr<const weave::PlanMap> plans;
  /// Shadow-validate every partial checkpoint; divergences show up in
  /// campaign.stats.validator_divergences.
  bool validate = false;
  /// Worker threads for the verification campaign.
  unsigned jobs = 1;
  /// Record the structured event trace of the verification campaign
  /// (Campaign::trace).
  bool trace = false;
  /// Full-checkpoint backend for the verification campaign (DESIGN.md §10).
  snapshot::BackendKind backend = snapshot::default_backend();
  /// Recovery policy table installed for the verification campaign
  /// (DESIGN.md §14); null leaves the engine off.
  std::shared_ptr<const recovery::PolicyTable> policies;
};

/// verify_masked plus the raw campaign — callers that need the checkpoint
/// counters (partial/fallback/validator stats) read them off the campaign.
struct MaskVerification {
  detect::Classification classification;
  detect::Campaign campaign;
};

MaskVerification verify_masked_full(std::function<void()> program,
                                    weave::Runtime::WrapPredicate wrap,
                                    const detect::Policy& policy = {},
                                    const VerifySettings& options = {});

/// Config-driven verification: the wrap predicate, checkpoint plans, policy,
/// jobs, validator and tracing flags all come from the unified builder.
/// Requires a predicate installed via Config::mask().
MaskVerification verify_masked_full(std::function<void()> program,
                                    const fatomic::Config& config);

/// Re-runs the full injection campaign against the masked program and
/// returns its classification; an effective mask yields zero non-atomic
/// methods.  `jobs` shards the verification campaign across worker threads
/// (CampaignSettings::jobs).
detect::Classification verify_masked(std::function<void()> program,
                                     weave::Runtime::WrapPredicate wrap,
                                     const detect::Policy& policy = {},
                                     unsigned jobs = 1);

}  // namespace fatomic::mask
