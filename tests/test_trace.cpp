// Campaign observability layer: trace determinism across jobs values,
// Chrome trace_event schema validity (via the repo's own JSON parser),
// per-worker stats attribution, and the metrics registry.
#include "fatomic/trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "fatomic/config.hpp"
#include "fatomic/detect/classify.hpp"
#include "fatomic/detect/experiment.hpp"
#include "fatomic/mask/masker.hpp"
#include "fatomic/report/json.hpp"
#include "fatomic/report/json_parse.hpp"
#include "fatomic/trace/export.hpp"
#include "fatomic/trace/metrics.hpp"
#include "subjects/apps/apps.hpp"
#include "testing/synthetic.hpp"

namespace detect = fatomic::detect;
namespace report = fatomic::report;
namespace trace = fatomic::trace;
namespace weave = fatomic::weave;

namespace {

// [[maybe_unused]]: the trace tests that call this are compiled out under
// -DFATOMIC_TRACE=OFF.
[[maybe_unused]] detect::Campaign traced_campaign(std::function<void()> program,
                                                  unsigned jobs) {
  fatomic::Config config;
  config.jobs(jobs).tracing(true);
  return detect::Experiment(std::move(program), config).run();
}

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    auto& rt = weave::Runtime::instance();
    rt.set_mode(weave::Mode::Direct);
    rt.set_wrap_predicate(nullptr);
    rt.trace.disable();
  }
};

}  // namespace

#ifndef FATOMIC_TRACE_DISABLED

TEST_F(TraceTest, DisabledByDefault) {
  detect::Campaign c = detect::Experiment(synthetic::workload).run();
  EXPECT_FALSE(c.trace.enabled);
  EXPECT_TRUE(c.trace.events.empty());
  // The trace section is absent from untraced campaign JSON, keeping the
  // output byte-identical to the pre-tracing format.
  EXPECT_EQ(report::campaign_json(c).find("\"trace\""), std::string::npos);
}

TEST_F(TraceTest, TracedCampaignRecordsEveryRun) {
  detect::Campaign c = traced_campaign(synthetic::workload, 1);
  ASSERT_TRUE(c.trace.enabled);
  ASSERT_FALSE(c.trace.events.empty());
  // One Run span per kept record, in threshold order, plus at most one
  // trailing span for the terminal exhaustion probe (whose record is
  // dropped, but whose execution is part of the campaign).
  std::vector<std::uint64_t> run_thresholds;
  for (const trace::Event& e : c.trace.events)
    if (e.kind == trace::EventKind::Run)
      run_thresholds.push_back(e.injection_point);
  ASSERT_GE(run_thresholds.size(), c.runs.size());
  ASSERT_LE(run_thresholds.size(), c.runs.size() + 1);
  for (std::size_t i = 0; i < c.runs.size(); ++i)
    EXPECT_EQ(run_thresholds[i], c.runs[i].injection_point) << "run " << i;
  // Exactly one Campaign span and one Baseline span.
  std::size_t campaigns = 0, baselines = 0, injections = 0;
  for (const trace::Event& e : c.trace.events) {
    campaigns += e.kind == trace::EventKind::Campaign;
    baselines += e.kind == trace::EventKind::Baseline;
    injections += e.kind == trace::EventKind::Injection;
  }
  EXPECT_EQ(campaigns, 1u);
  EXPECT_EQ(baselines, 1u);
  EXPECT_EQ(injections, c.injections());
  EXPECT_GT(c.trace.duration_ns(), 0u);
}

// The tentpole determinism guarantee: the merged event stream is identical
// modulo timestamps for jobs=1 and jobs=8 on the collections family.
TEST_F(TraceTest, CanonicalStreamIdenticalAcrossJobsOnCollections) {
  const auto& app = subjects::apps::app("LinkedList");
  detect::Campaign seq = traced_campaign(app.program, 1);
  detect::Campaign par = traced_campaign(app.program, 8);
  ASSERT_FALSE(seq.trace.events.empty());
  EXPECT_EQ(seq.trace.events.size(), par.trace.events.size());
  EXPECT_EQ(trace::canonical_stream(seq.trace),
            trace::canonical_stream(par.trace));
}

TEST_F(TraceTest, CanonicalStreamIdenticalAcrossJobsOnSynthetic) {
  detect::Campaign seq = traced_campaign(synthetic::workload, 1);
  detect::Campaign par = traced_campaign(synthetic::workload, 4);
  EXPECT_EQ(trace::canonical_stream(seq.trace),
            trace::canonical_stream(par.trace));
}

TEST_F(TraceTest, CanonicalStreamStableAcrossRepeatedRuns) {
  detect::Campaign a = traced_campaign(synthetic::workload, 1);
  detect::Campaign b = traced_campaign(synthetic::workload, 1);
  // Timestamps differ between executions; the canonical form must not.
  EXPECT_EQ(trace::canonical_stream(a.trace), trace::canonical_stream(b.trace));
}

TEST_F(TraceTest, WorkerStatsSumToCampaignStats) {
  detect::Campaign c = traced_campaign(subjects::apps::app("LinkedList").program, 4);
  ASSERT_FALSE(c.worker_stats.empty());
  weave::RuntimeStats sum;
  std::uint64_t runs = 0;
  for (const detect::WorkerStats& w : c.worker_stats) {
    sum += w.stats;
    runs += w.runs;
  }
  EXPECT_EQ(sum.snapshots_taken, c.stats.snapshots_taken);
  EXPECT_EQ(sum.comparisons, c.stats.comparisons);
  EXPECT_EQ(sum.rollbacks, c.stats.rollbacks);
  EXPECT_EQ(sum.wrapped_calls, c.stats.wrapped_calls);
  EXPECT_EQ(sum.checkpoint_units, c.stats.checkpoint_units);
  EXPECT_EQ(sum.exceptions_thrown, c.stats.exceptions_thrown);
  EXPECT_GE(runs, c.runs.size());
  // With jobs=4 more than one worker must actually have contributed.
  EXPECT_GT(c.worker_stats.size(), 1u);
}

TEST_F(TraceTest, SequentialWorkerStatsAttributeToDriver) {
  detect::Campaign c = traced_campaign(synthetic::workload, 1);
  ASSERT_EQ(c.worker_stats.size(), 1u);
  EXPECT_EQ(c.worker_stats[0].worker, 0u);
  EXPECT_EQ(c.worker_stats[0].stats.comparisons, c.stats.comparisons);
}

// ---- Chrome trace_event export ---------------------------------------------

TEST_F(TraceTest, ChromeTraceIsSchemaValidAndRoundTrips) {
  detect::Campaign c = traced_campaign(synthetic::workload, 1);
  const std::string doc = trace::chrome_trace_json(c.trace, "synthetic");

  const report::JsonValue root = report::json_parse(doc);
  ASSERT_TRUE(root.is_object());
  const report::JsonValue& events = root.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());
  for (const report::JsonValue& e : events.array) {
    ASSERT_TRUE(e.is_object());
    const report::JsonValue& ph = e.at("ph");
    ASSERT_TRUE(ph.is_string());
    EXPECT_TRUE(ph.string == "X" || ph.string == "i" || ph.string == "M")
        << ph.string;
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    EXPECT_TRUE(e.at("name").is_string());
    if (ph.string == "X") {
      EXPECT_TRUE(e.at("ts").is_number());
      EXPECT_TRUE(e.at("dur").is_number());
    } else if (ph.string == "i") {
      EXPECT_TRUE(e.at("ts").is_number());
    }
  }
  // Round trip: parse -> dump -> parse yields a byte-identical dump.
  EXPECT_EQ(report::json_parse(root.dump()).dump(), root.dump());
}

// Golden file: a hand-built trace with pinned timestamps must serialize to
// exactly this document (schema lock for external consumers).
TEST_F(TraceTest, ChromeTraceGoldenFile) {
  trace::Trace t;
  t.enabled = true;
  trace::Event run;
  run.kind = trace::EventKind::Run;
  run.worker = 1;
  run.ts_ns = 1500;
  run.dur_ns = 2500;
  run.injection_point = 3;
  run.value = 2;
  t.events.push_back(run);
  trace::Event inj;
  inj.kind = trace::EventKind::Injection;
  inj.worker = 1;
  inj.ts_ns = 2000;
  inj.injection_point = 3;
  inj.value = 3;
  inj.detail = "fatomic::InjectedRuntimeError";
  t.events.push_back(inj);

  const std::string expected =
      "{\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"golden\"}},"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"worker 1\"}},"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":1.500,\"dur\":2.500,"
      "\"name\":\"run\",\"cat\":\"fatomic\","
      "\"args\":{\"injection_point\":3,\"value\":2}},"
      "{\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":2.000,\"s\":\"t\","
      "\"name\":\"injection\",\"cat\":\"fatomic\","
      "\"args\":{\"injection_point\":3,\"value\":3,"
      "\"detail\":\"fatomic::InjectedRuntimeError\"}}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(trace::chrome_trace_json(t, "golden"), expected);
  // And the golden document itself round-trips through the parser.
  EXPECT_EQ(report::json_parse(expected).dump(), expected);
}

TEST_F(TraceTest, MultiProcessTraceAssignsOnePidPerApp) {
  detect::Campaign a = traced_campaign(synthetic::workload, 1);
  detect::Campaign b = traced_campaign(synthetic::workload, 1);
  const std::string doc =
      trace::chrome_trace_json({{"first", a.trace}, {"second", b.trace}});
  const report::JsonValue root = report::json_parse(doc);
  std::set<std::int64_t> pids;
  for (const report::JsonValue& e : root.at("traceEvents").array)
    pids.insert(e.at("pid").as_int());
  EXPECT_EQ(pids, (std::set<std::int64_t>{0, 1}));
}

// ---- campaign_json trace section -------------------------------------------

TEST_F(TraceTest, TraceSectionEmbeddedForTracedCampaigns) {
  detect::Campaign c = traced_campaign(synthetic::workload, 2);
  const report::JsonValue root = report::json_parse(report::campaign_json(c));
  const report::JsonValue& section = root.at("trace");
  EXPECT_TRUE(section.at("enabled").boolean);
  EXPECT_EQ(section.at("events").as_int(),
            static_cast<std::int64_t>(c.trace.events.size()));
  const report::JsonValue& workers = section.at("workers");
  ASSERT_TRUE(workers.is_array());
  std::int64_t comparisons = 0;
  for (const report::JsonValue& w : workers.array)
    comparisons += w.at("stats").at("comparisons").as_int();
  EXPECT_EQ(comparisons, static_cast<std::int64_t>(c.stats.comparisons));
  EXPECT_TRUE(section.at("metrics").is_object());
}

TEST_F(TraceTest, TraceSummaryMentionsEveryKind) {
  detect::Campaign c = traced_campaign(synthetic::workload, 1);
  const std::string summary = trace::trace_summary(c.trace);
  EXPECT_NE(summary.find("run"), std::string::npos);
  EXPECT_NE(summary.find("snapshot"), std::string::npos);
  EXPECT_NE(summary.find("injection"), std::string::npos);
  EXPECT_NE(summary.find("campaign"), std::string::npos);
}

// ---- runtime hooks ----------------------------------------------------------

TEST_F(TraceTest, MaskedScopeRecordsEnterAndExit) {
  auto& rt = weave::Runtime::instance();
  rt.trace.enable(0);
  const std::size_t before = rt.trace.size();
  {
    fatomic::mask::MaskedScope scope(
        [](const weave::MethodInfo&) { return false; });
  }
  std::vector<trace::Event> events = rt.trace.take(before);
  rt.trace.disable();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, trace::EventKind::MaskScope);
  EXPECT_EQ(events[0].value, 1u);
  EXPECT_EQ(events[1].kind, trace::EventKind::MaskScope);
  EXPECT_EQ(events[1].value, 0u);
}

TEST_F(TraceTest, MaskVerificationTraceCoversCheckpoints) {
  auto cls = detect::classify(detect::Experiment(synthetic::workload).run());
  fatomic::Config config;
  config.tracing(true).mask(fatomic::mask::wrap_pure(cls));
  const auto verified =
      fatomic::mask::verify_masked_full(synthetic::workload, config);
  ASSERT_TRUE(verified.campaign.trace.enabled);
  // Full checkpoints show up as Snapshot or ArenaCapture spans depending on
  // the selected backend; stats.snapshots_taken counts both.
  std::size_t snapshots = 0, rollbacks = 0;
  for (const trace::Event& e : verified.campaign.trace.events) {
    snapshots += e.kind == trace::EventKind::Snapshot ||
                 e.kind == trace::EventKind::ArenaCapture;
    rollbacks += e.kind == trace::EventKind::Rollback;
  }
  EXPECT_EQ(snapshots, verified.campaign.stats.snapshots_taken);
  EXPECT_EQ(rollbacks, verified.campaign.stats.rollbacks);
}

#endif  // FATOMIC_TRACE_DISABLED

// ---- metrics registry (independent of tracing) ------------------------------

TEST(Metrics, HistogramNearestRankPercentiles) {
  trace::Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.percentile(50), 50u);
  EXPECT_EQ(h.percentile(90), 90u);
  EXPECT_EQ(h.percentile(99), 99u);
  EXPECT_EQ(h.percentile(100), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Metrics, HistogramMergeConcatenates) {
  trace::Histogram a, b;
  a.observe(1);
  a.observe(3);
  b.observe(2);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 6u);
  EXPECT_EQ(a.percentile(50), 2u);
}

TEST(Metrics, RegistryCountersAndJson) {
  trace::MetricsRegistry reg;
  reg.add("a");
  reg.add("a", 2);
  reg.add("b", 5);
  reg.histogram("h").observe(7);
  EXPECT_EQ(reg.counter("a"), 3u);
  EXPECT_EQ(reg.counter("absent"), 0u);
  const report::JsonValue root = report::json_parse(reg.to_json());
  EXPECT_EQ(root.at("counters").at("a").as_int(), 3);
  EXPECT_EQ(root.at("counters").at("b").as_int(), 5);
  EXPECT_EQ(root.at("histograms").at("h").at("count").as_int(), 1);
  EXPECT_EQ(root.at("histograms").at("h").at("p50").as_int(), 7);
}

TEST(Metrics, RegistryMergeAddsCountersAndHistograms) {
  trace::MetricsRegistry a, b;
  a.add("x", 1);
  b.add("x", 2);
  b.add("y", 4);
  a.histogram("h").observe(1);
  b.histogram("h").observe(3);
  a.merge(b);
  EXPECT_EQ(a.counter("x"), 3u);
  EXPECT_EQ(a.counter("y"), 4u);
  EXPECT_EQ(a.histogram("h").count(), 2u);
}

TEST(Metrics, CampaignMetricsSubsumeRuntimeStats) {
  fatomic::Config config;
  config.tracing(true);
  detect::Campaign c =
      detect::Experiment(synthetic::workload, config).run();
  fatomic::weave::Runtime::instance().set_mode(fatomic::weave::Mode::Direct);
  const trace::MetricsRegistry reg = trace::campaign_metrics(c);
  EXPECT_EQ(reg.counter("stats.comparisons"), c.stats.comparisons);
  EXPECT_EQ(reg.counter("stats.snapshots_taken"), c.stats.snapshots_taken);
  EXPECT_EQ(reg.counter("campaign.runs"), c.runs.size());
  EXPECT_EQ(reg.counter("campaign.injections"), c.injections());
  // Per-exception-type injection counts partition the total.
  std::uint64_t by_type = 0;
  for (const auto& [name, v] : reg.counters())
    if (name.rfind("injections.", 0) == 0) by_type += v;
  EXPECT_EQ(by_type, c.injections());
}

// ---- JSON parser edge cases -------------------------------------------------

TEST(JsonParse, ParsesScalarsArraysObjects) {
  const report::JsonValue v = report::json_parse(
      R"({"s":"a\"b","n":-1.5e2,"t":true,"f":false,"z":null,"a":[1,2]})");
  EXPECT_EQ(v.at("s").string, "a\"b");
  EXPECT_DOUBLE_EQ(v.at("n").number, -150.0);
  EXPECT_TRUE(v.at("t").boolean);
  EXPECT_FALSE(v.at("f").boolean);
  EXPECT_TRUE(v.at("z").is_null());
  ASSERT_EQ(v.at("a").array.size(), 2u);
  EXPECT_EQ(v.at("a").array[1].as_int(), 2);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(report::json_parse("{"), std::runtime_error);
  EXPECT_THROW(report::json_parse("{}extra"), std::runtime_error);
  EXPECT_THROW(report::json_parse("{'single':1}"), std::runtime_error);
  EXPECT_THROW(report::json_parse("[1,]"), std::runtime_error);
}

TEST(JsonParse, RoundTripsCampaignJson) {
  detect::Campaign c = detect::Experiment(synthetic::workload).run();
  fatomic::weave::Runtime::instance().set_mode(fatomic::weave::Mode::Direct);
  const std::string doc = report::campaign_json(c);
  const report::JsonValue root = report::json_parse(doc);
  EXPECT_EQ(root.dump(), doc);
  EXPECT_EQ(root.at("runs").as_int(), static_cast<std::int64_t>(c.runs.size()));
}
