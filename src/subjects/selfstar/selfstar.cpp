#include "subjects/selfstar/selfstar.hpp"

#include <cctype>

#include "fatomic/snapshot/restore.hpp"  // FAT_POLY

namespace subjects::selfstar {

FAT_POLY(Component, UppercaseAdaptor);
FAT_POLY(Component, TagAdaptor);
FAT_POLY(Component, FilterAdaptor);
FAT_POLY(Component, CollectorSink);

bool UppercaseAdaptor::handle(Message& m) {
  return FAT_INVOKE_ARGS(handle, std::tie(m), [&] {
    for (char& c : m.payload) c = static_cast<char>(std::toupper(
                                  static_cast<unsigned char>(c)));
    ++m.hops;
    return true;
  });
}

bool TagAdaptor::handle(Message& m) {
  return FAT_INVOKE_ARGS(handle, std::tie(m), [&] {
    m.topic = prefix_ + m.topic;
    ++m.hops;
    return true;
  });
}

bool FilterAdaptor::handle(Message& m) {
  return FAT_INVOKE_ARGS(handle, std::tie(m), [&] {
    ++m.hops;
    return m.payload.find(needle_) == std::string::npos;
  });
}

bool CollectorSink::handle(Message& m) {
  return FAT_INVOKE_ARGS(handle, std::tie(m), [&] {
    ++m.hops;
    collected_.push_back(m.payload);  // single commit step
    return true;
  });
}

void AdaptorChain::add(std::unique_ptr<Component> c) {
  FAT_INVOKE(add, [&] { components_.push_back(std::move(c)); });
}

bool AdaptorChain::process(Message& m) {
  return FAT_INVOKE_ARGS(process, std::tie(m), [&] {
    // Careful Self* style: transform a local copy, commit at the end.
    Message work = m;
    for (const auto& c : components_) {
      if (!c->handle(work)) return false;  // dropped: m left untouched
    }
    m = work;  // single commit step
    return true;
  });
}

int AdaptorChain::process_all(std::vector<Message>& batch) {
  return FAT_INVOKE_ARGS(process_all, std::tie(batch), [&] {
    int survivors = 0;
    for (Message& m : batch)
      if (process(m)) ++survivors;  // partial processing on failure
    return survivors;
  });
}

void AdaptorChain::reconfigure(const std::vector<std::string>& kinds) {
  FAT_INVOKE(reconfigure, [&] {
    // Rare maintenance operation: tears down, then rebuilds step by step.
    clear();
    for (const std::string& k : kinds) {
      if (k == "uppercase")
        add(std::make_unique<UppercaseAdaptor>());
      else if (k == "collector")
        add(std::make_unique<CollectorSink>());
      else if (k.rfind("tag:", 0) == 0)
        add(std::make_unique<TagAdaptor>(k.substr(4)));
      else if (k.rfind("filter:", 0) == 0)
        add(std::make_unique<FilterAdaptor>(k.substr(7)));
      else
        throw SelfStarError("unknown component kind: " + k);
    }
  });
}

void AdaptorChain::clear() {
  FAT_INVOKE(clear, [&] { components_.clear(); });
}

void EventQueue::enqueue(const Message& m) {
  FAT_INVOKE(enqueue, [&] {
    if (size() >= kCapacity) throw SelfStarError("queue full");
    queue_.push_back(m);
  });
}

Message EventQueue::dequeue() {
  return FAT_INVOKE(dequeue, [&] {
    if (queue_.empty()) throw SelfStarError("queue empty");
    Message m = queue_.front();
    queue_.pop_front();
    return m;
  });
}

int EventQueue::pump(AdaptorChain& chain) {
  return FAT_INVOKE_ARGS(pump, std::tie(chain), [&] {
    int survivors = 0;
    while (!empty()) {
      Message m = dequeue();      // the message is gone if the next ...
      if (chain.process(m)) ++survivors;  // ... step fails (legacy pump)
      ++processed_;
    }
    return survivors;
  });
}

void EventQueue::drain_to(EventQueue& other) {
  FAT_INVOKE_ARGS(drain_to, std::tie(other), [&] {
    while (!empty()) other.enqueue(dequeue());  // partial on failure
  });
}

void EventQueue::clear() {
  FAT_INVOKE(clear, [&] { queue_.clear(); });
}

std::unique_ptr<Component> ComponentFactory::build(const std::string& kind,
                                                   const std::string& arg) {
  return FAT_INVOKE(build, [&]() -> std::unique_ptr<Component> {
    std::unique_ptr<Component> c;
    if (kind == "uppercase")
      c = std::make_unique<UppercaseAdaptor>();
    else if (kind == "tag")
      c = std::make_unique<TagAdaptor>(arg);
    else if (kind == "filter")
      c = std::make_unique<FilterAdaptor>(arg);
    else if (kind == "collector")
      c = std::make_unique<CollectorSink>();
    else
      throw SelfStarError("unknown component kind: " + kind);
    ++built_;  // counted after construction succeeded
    return c;
  });
}

int ComponentFactory::assemble(subjects::xml::XmlDocument& doc,
                               AdaptorChain& chain) {
  return FAT_INVOKE_ARGS(assemble, std::tie(chain), [&] {
    int added = 0;
    const subjects::xml::XmlNode* root = doc.root();
    if (root == nullptr) throw SelfStarError("empty configuration");
    for (const auto& child : root->children) {
      if (child->name != "component") continue;
      const std::string* kind = child->attr("kind");
      if (kind == nullptr) throw SelfStarError("component without kind");
      const std::string* arg = child->attr("arg");
      chain.add(build(*kind, arg ? *arg : ""));  // partial assembly on failure
      ++added;
    }
    return added;
  });
}

}  // namespace subjects::selfstar
