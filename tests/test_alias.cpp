// Pass 5 (analyze/alias): corner cases of the alias/escape lattice — a
// pointer cursor rebound inside a loop, const_cast laundering (must widen
// to ⊤), a pointer-to-field returned through an un-instrumented helper,
// structured bindings over receiver fields, and alias chains crossing a
// ctor frame (fresh storage is droppable for one member hop, never two) —
// plus the `alias_check` soundness gate over synthetic campaign footprints.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "fatomic/analyze/alias.hpp"
#include "fatomic/analyze/effects.hpp"
#include "fatomic/analyze/source_model.hpp"
#include "fatomic/analyze/write_sets.hpp"
#include "fatomic/detect/campaign.hpp"
#include "fatomic/weave/method_info.hpp"

namespace analyze = fatomic::analyze;
namespace detect = fatomic::detect;
namespace weave = fatomic::weave;
namespace fs = std::filesystem;

namespace {

/// Writes a synthetic subject tree into a fresh temp directory and scans it.
/// The scanner works on macro *tokens*, so the files never need to compile.
class AliasEdgeCases : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("fatomic_alias_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& name, const std::string& text) {
    std::ofstream out(root_ / name);
    out << text;
  }

  analyze::SourceModel scan() { return analyze::scan_sources(root_.string()); }

  fs::path root_;
};

const char* kAliasHeader = R"(
#pragma once
namespace edge {
class Bad {};
struct Node {
  int value = 0;
  Node* next = nullptr;
};
struct Wrap {
  Wrap(Node* p);
  Node* p = nullptr;
  int count = 0;
};
class Box {
 public:
  void bump();
  void launder();
  void step();
  void unpack();
  void fresh();
  void stash();
 private:
  Node* pick(Node* a);
  FAT_METHOD_INFO(edge::Box, bump);
  FAT_METHOD_INFO(edge::Box, launder);
  FAT_METHOD_INFO(edge::Box, step);
  FAT_METHOD_INFO(edge::Box, unpack);
  FAT_METHOD_INFO(edge::Box, fresh);
  FAT_METHOD_INFO(edge::Box, stash);
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  const Node* frozen_ = nullptr;
  std::pair<int, int> range_;
};
}  // namespace edge
FAT_REFLECT(edge::Node, FAT_FIELD(edge::Node, value),
            FAT_FIELD(edge::Node, next));
FAT_REFLECT(edge::Box, FAT_FIELD(edge::Box, head_),
            FAT_FIELD(edge::Box, tail_));
)";

const char* kAliasSource = R"(
#include "box.hpp"
namespace edge {
// Cursor rebound inside the loop: the flow-insensitive merge must keep
// both bindings (head_ from the init, next from the rebinding), so the
// final write is attributed to the receiver subtree, not collapsed.
void Box::bump() {
  Node* cur = head_;
  while (cur != nullptr) {
    cur = cur->next;
  }
  cur->value = 1;
  throw Bad();
}
// const_cast laundering: the binding widens to ⊤ and the starred write
// through it keeps the historical full-checkpoint collapse.
void Box::launder() {
  Node* p = const_cast<Node*>(frozen_);
  *p = Node();
  throw Bad();
}
Node* Box::pick(Node* a) { return a; }
// Pointer-to-field threaded through the un-instrumented helper above: the
// callee's `return a` is a position-0 parameter alias, re-resolved at the
// call site to the receiver subtree the argument names.
void Box::step() {
  Node* p = pick(head_);
  p->value = 7;
  throw Bad();
}
// Structured bindings over a receiver field: every bound name aliases the
// initializer's subtree.
void Box::unpack() {
  auto& [lo, hi] = range_;
  lo = 3;
  throw Bad();
}
// A fresh allocation terminates the chain: one-hop writes land in the new
// object's own storage and are droppable — even when they *store* receiver
// pointers (the classic pre-publication list splice).
void Box::fresh() {
  Node* n = new Node();
  n->value = 4;
  n->next = head_;
  throw Bad();
}
// Crossing the ctor frame: Wrap may have stashed the receiver pointer it
// was constructed from, so a *second* member hop re-enters receiver state
// and must not be dropped with the frame-local storage.
void Box::stash() {
  Wrap w(head_);
  w.p->value = 5;
  throw Bad();
}
}  // namespace edge
)";

}  // namespace

// ---- alias lattice corner cases ---------------------------------------------

TEST_F(AliasEdgeCases, ReferenceRebindingInLoopMergesBothBindings) {
  write("box.hpp", kAliasHeader);
  write("box.cpp", kAliasSource);
  const analyze::SourceModel model = scan();
  const analyze::AliasAnalysis aliases = analyze::analyze_aliases(model);
  const analyze::FnAliasInfo* info = aliases.find("edge::Box::bump");
  ASSERT_NE(info, nullptr);
  ASSERT_TRUE(info->locals.count("cur"));
  const analyze::AliasTarget& cur = info->locals.at("cur");
  EXPECT_EQ(cur.kind, analyze::AliasTarget::Kind::Field);
  EXPECT_TRUE(cur.roots.count("head_"));
  EXPECT_TRUE(cur.roots.count("next"));

  const analyze::EffectAnalysis effects = analyze::analyze_effects(model);
  const analyze::EffectSummary* es = effects.find("edge::Box::bump");
  ASSERT_NE(es, nullptr);
  EXPECT_FALSE(es->write_top);
  EXPECT_TRUE(es->write_names.count("value"));
  const analyze::WriteSetAnalysis ws = analyze::analyze_write_sets(model, effects);
  const analyze::MethodWriteSet* w = ws.find("edge::Box::bump");
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(w->plan.partial);
  EXPECT_TRUE(w->plan.capture.count("value"));
}

TEST_F(AliasEdgeCases, ConstCastLaunderingStaysTop) {
  write("box.hpp", kAliasHeader);
  write("box.cpp", kAliasSource);
  const analyze::SourceModel model = scan();
  const analyze::AliasAnalysis aliases = analyze::analyze_aliases(model);
  const analyze::FnAliasInfo* info = aliases.find("edge::Box::launder");
  ASSERT_NE(info, nullptr);
  ASSERT_TRUE(info->locals.count("p"));
  EXPECT_EQ(info->locals.at("p").kind, analyze::AliasTarget::Kind::Top);

  const analyze::EffectAnalysis effects = analyze::analyze_effects(model);
  const analyze::EffectSummary* es = effects.find("edge::Box::launder");
  ASSERT_NE(es, nullptr);
  EXPECT_TRUE(es->write_top);
  const analyze::WriteSetAnalysis ws = analyze::analyze_write_sets(model, effects);
  const analyze::MethodWriteSet* w = ws.find("edge::Box::launder");
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(w->top);
  EXPECT_FALSE(w->plan.partial);
}

TEST_F(AliasEdgeCases, PointerToFieldThroughHelperResolves) {
  write("box.hpp", kAliasHeader);
  write("box.cpp", kAliasSource);
  const analyze::SourceModel model = scan();
  const analyze::AliasAnalysis aliases = analyze::analyze_aliases(model);
  const analyze::FnAliasInfo* helper = aliases.find("edge::Box::pick");
  ASSERT_NE(helper, nullptr);
  EXPECT_TRUE(helper->has_return);
  EXPECT_EQ(helper->returns.kind, analyze::AliasTarget::Kind::Param);
  EXPECT_TRUE(helper->returns.positions.count(0));

  const analyze::FnAliasInfo* info = aliases.find("edge::Box::step");
  ASSERT_NE(info, nullptr);
  ASSERT_TRUE(info->locals.count("p"));
  const analyze::AliasTarget& p = info->locals.at("p");
  EXPECT_EQ(p.kind, analyze::AliasTarget::Kind::Field);
  EXPECT_TRUE(p.roots.count("head_"));

  const analyze::EffectAnalysis effects = analyze::analyze_effects(model);
  const analyze::EffectSummary* es = effects.find("edge::Box::step");
  ASSERT_NE(es, nullptr);
  EXPECT_FALSE(es->write_top);
  EXPECT_TRUE(es->write_names.count("value"));
}

TEST_F(AliasEdgeCases, StructuredBindingsOverReceiverFields) {
  write("box.hpp", kAliasHeader);
  write("box.cpp", kAliasSource);
  const analyze::SourceModel model = scan();
  const analyze::AliasAnalysis aliases = analyze::analyze_aliases(model);
  const analyze::FnAliasInfo* info = aliases.find("edge::Box::unpack");
  ASSERT_NE(info, nullptr);
  ASSERT_TRUE(info->locals.count("lo"));
  ASSERT_TRUE(info->locals.count("hi"));
  for (const char* name : {"lo", "hi"}) {
    const analyze::AliasTarget& t = info->locals.at(name);
    EXPECT_EQ(t.kind, analyze::AliasTarget::Kind::Field) << name;
    EXPECT_TRUE(t.roots.count("range_")) << name;
  }

  const analyze::EffectAnalysis effects = analyze::analyze_effects(model);
  const analyze::EffectSummary* es = effects.find("edge::Box::unpack");
  ASSERT_NE(es, nullptr);
  EXPECT_FALSE(es->write_top);
  EXPECT_TRUE(es->write_names.count("range_"));
}

TEST_F(AliasEdgeCases, AliasChainAcrossCtorFrame) {
  write("box.hpp", kAliasHeader);
  write("box.cpp", kAliasSource);
  const analyze::SourceModel model = scan();
  const analyze::AliasAnalysis aliases = analyze::analyze_aliases(model);

  // Fresh allocation: Local, and the one-hop write is dropped entirely.
  const analyze::FnAliasInfo* fresh = aliases.find("edge::Box::fresh");
  ASSERT_NE(fresh, nullptr);
  ASSERT_TRUE(fresh->locals.count("n"));
  EXPECT_EQ(fresh->locals.at("n").kind, analyze::AliasTarget::Kind::Local);
  const analyze::EffectAnalysis effects = analyze::analyze_effects(model);
  const analyze::EffectSummary* es_fresh = effects.find("edge::Box::fresh");
  ASSERT_NE(es_fresh, nullptr);
  EXPECT_FALSE(es_fresh->write_top);
  EXPECT_TRUE(es_fresh->write_names.empty());

  // Crossing the ctor frame: the second hop must survive as a named write —
  // Wrap's ctor may have stashed the receiver pointer.
  const analyze::FnAliasInfo* stash = aliases.find("edge::Box::stash");
  ASSERT_NE(stash, nullptr);
  ASSERT_TRUE(stash->locals.count("w"));
  EXPECT_EQ(stash->locals.at("w").kind, analyze::AliasTarget::Kind::Local);
  const analyze::EffectSummary* es_stash = effects.find("edge::Box::stash");
  ASSERT_NE(es_stash, nullptr);
  EXPECT_TRUE(es_stash->write_top || es_stash->write_names.count("value"));
  EXPECT_FALSE(!es_stash->write_top && es_stash->write_names.empty());
}

// ---- the dynamic soundness gate ---------------------------------------------

namespace {

/// One synthetic campaign with a single non-atomic mark carrying `paths`.
detect::Campaign campaign_with_footprint(const weave::MethodInfo* mi,
                                         std::vector<std::string> paths,
                                         bool atomic = false) {
  detect::Campaign campaign;
  detect::RunRecord run;
  run.injection_point = 1;
  run.injected = true;
  weave::Mark mark{mi, atomic, 1, 0, "", "", 0, std::move(paths)};
  run.marks.push_back(std::move(mark));
  campaign.runs.push_back(std::move(run));
  return campaign;
}

analyze::WriteSetAnalysis partial_plan(const std::string& qualified,
                                       std::set<std::string> capture,
                                       std::set<std::string> prune) {
  analyze::WriteSetAnalysis ws;
  analyze::MethodWriteSet w;
  w.qualified_name = qualified;
  w.plan.partial = true;
  w.plan.capture = std::move(capture);
  w.plan.prune = std::move(prune);
  ws.methods.emplace(qualified, std::move(w));
  return ws;
}

}  // namespace

TEST(AliasCheckGate, FlagsUncoveredAndPrunedPaths) {
  static weave::MethodInfo mi("GateT", "m", {});
  const auto ws = partial_plan("GateT::m", {"value"}, {"left"});
  const auto campaign = campaign_with_footprint(
      &mi, {"root.value", "root.other", "root.left.value"});
  const analyze::AliasCheckResult res = analyze::alias_check(campaign, ws);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.marks_checked, 1u);
  EXPECT_EQ(res.paths_checked, 3u);
  ASSERT_EQ(res.violations.size(), 2u);
  std::set<std::string> paths;
  for (const auto& v : res.violations) {
    EXPECT_EQ(v.method, "GateT::m");
    paths.insert(v.path);
  }
  EXPECT_TRUE(paths.count("root.other"));
  EXPECT_TRUE(paths.count("root.left.value"));
}

TEST(AliasCheckGate, CoveredFootprintIsSound) {
  static weave::MethodInfo mi("GateU", "m", {});
  const auto ws = partial_plan("GateU::m", {"value", "count"}, {});
  const auto campaign =
      campaign_with_footprint(&mi, {"root.value", "root.next.count"});
  const analyze::AliasCheckResult res = analyze::alias_check(campaign, ws);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.paths_checked, 2u);
}

TEST(AliasCheckGate, SkipsAtomicMarksAndFullPlanMethods) {
  static weave::MethodInfo mi("GateV", "m", {});
  // Atomic mark: nothing to validate even with an uncovered path.
  {
    const auto ws = partial_plan("GateV::m", {"value"}, {});
    const auto campaign =
        campaign_with_footprint(&mi, {"root.other"}, /*atomic=*/true);
    EXPECT_TRUE(analyze::alias_check(campaign, ws).ok());
  }
  // Full-plan method: the checkpoint covers everything by construction.
  {
    analyze::WriteSetAnalysis ws;
    analyze::MethodWriteSet w;
    w.qualified_name = "GateV::m";
    w.top = true;
    ws.methods.emplace("GateV::m", std::move(w));
    const auto campaign = campaign_with_footprint(&mi, {"root.other"});
    const analyze::AliasCheckResult res = analyze::alias_check(campaign, ws);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.paths_checked, 0u);
  }
}
