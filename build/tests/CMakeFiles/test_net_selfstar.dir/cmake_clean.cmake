file(REMOVE_RECURSE
  "CMakeFiles/test_net_selfstar.dir/test_net_selfstar.cpp.o"
  "CMakeFiles/test_net_selfstar.dir/test_net_selfstar.cpp.o.d"
  "test_net_selfstar"
  "test_net_selfstar.pdb"
  "test_net_selfstar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_selfstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
