// Property: the corrected program P_C is *semantically equivalent* to the
// original program P when no exception occurs (the paper's transformation
// only changes behaviour on the exceptional path).  Random operation
// sequences over the collection subjects must produce identical results in
// Direct mode and in Mask mode with every method wrapped.
#include <gtest/gtest.h>

#include <random>

#include "fatomic/mask/masker.hpp"
#include "fatomic/weave/runtime.hpp"
#include "subjects/collections/dynarray.hpp"
#include "subjects/collections/hashed_map.hpp"
#include "subjects/collections/linked_list.hpp"

namespace weave = fatomic::weave;
using namespace subjects::collections;

namespace {

class MaskedEquivalence : public ::testing::TestWithParam<unsigned> {
 protected:
  void TearDown() override {
    weave::Runtime::instance().set_mode(weave::Mode::Direct);
    weave::Runtime::instance().set_wrap_predicate(nullptr);
  }
};

/// Drives a LinkedList with a seeded random op sequence; returns a trace of
/// observable results.
std::vector<int> drive_list(unsigned seed) {
  std::mt19937 rng(seed);
  LinkedList l;
  std::vector<int> trace;
  for (int i = 0; i < 60; ++i) {
    switch (rng() % 8) {
      case 0:
        l.push_back(static_cast<int>(rng() % 50));
        break;
      case 1:
        l.push_front(static_cast<int>(rng() % 50));
        break;
      case 2:
        if (!l.empty()) trace.push_back(l.pop_front());
        break;
      case 3:
        if (!l.empty()) trace.push_back(l.pop_back());
        break;
      case 4:
        trace.push_back(l.index_of(static_cast<int>(rng() % 50)));
        break;
      case 5:
        l.insert_sorted(static_cast<int>(rng() % 50));
        break;
      case 6:
        if (rng() % 4 == 0) l.sort();
        break;
      case 7:
        trace.push_back(l.remove_value(static_cast<int>(rng() % 50)));
        break;
    }
  }
  for (int v : l.to_vector()) trace.push_back(v);
  return trace;
}

std::vector<int> drive_map(unsigned seed) {
  std::mt19937 rng(seed);
  HashedMap m;
  std::vector<int> trace;
  for (int i = 0; i < 80; ++i) {
    const std::string key = "k" + std::to_string(rng() % 20);
    switch (rng() % 4) {
      case 0:
        trace.push_back(m.put(key, static_cast<int>(rng() % 100)) ? 1 : 0);
        break;
      case 1:
        trace.push_back(m.get_or(key, -1));
        break;
      case 2:
        if (m.contains_key(key)) trace.push_back(m.remove(key));
        break;
      case 3:
        trace.push_back(m.size());
        break;
    }
  }
  return trace;
}

}  // namespace

TEST_P(MaskedEquivalence, LinkedListTracesMatch) {
  std::vector<int> direct, masked;
  {
    weave::ScopedMode m(weave::Mode::Direct);
    direct = drive_list(GetParam());
  }
  {
    fatomic::mask::MaskedScope scope(
        [](const weave::MethodInfo&) { return true; });  // wrap everything
    masked = drive_list(GetParam());
  }
  EXPECT_EQ(direct, masked);
}

TEST_P(MaskedEquivalence, HashedMapTracesMatch) {
  std::vector<int> direct, masked;
  {
    weave::ScopedMode m(weave::Mode::Direct);
    direct = drive_map(GetParam());
  }
  {
    fatomic::mask::MaskedScope scope(
        [](const weave::MethodInfo&) { return true; });
    masked = drive_map(GetParam());
  }
  EXPECT_EQ(direct, masked);
}

TEST_P(MaskedEquivalence, CountAndInjectModesAlsoAgree) {
  // The injector program P_I must compute the same results as P when the
  // threshold is never reached (Figure 1: same program, extra wrappers).
  std::vector<int> direct, counted, injected;
  {
    weave::ScopedMode m(weave::Mode::Direct);
    direct = drive_list(GetParam());
  }
  {
    weave::ScopedMode m(weave::Mode::Count);
    weave::Runtime::instance().reset_counts();
    counted = drive_list(GetParam());
  }
  {
    weave::ScopedMode m(weave::Mode::Inject);
    weave::Runtime::instance().begin_run(0);  // never fires
    injected = drive_list(GetParam());
  }
  EXPECT_EQ(direct, counted);
  EXPECT_EQ(direct, injected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskedEquivalence, ::testing::Range(0u, 10u));
