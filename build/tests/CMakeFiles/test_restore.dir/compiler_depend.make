# Empty compiler generated dependencies file for test_restore.
# This may be replaced when dependencies are built.
