// Checkpoint cost of the corrected program P_C: full deep-copy checkpoints
// vs the field-granular plans derived by the interprocedural write-set
// analysis (DESIGN.md §8).  One subject per family; for each the bench
//
//   1. classifies the app and builds the paper's wrap-pure mask,
//   2. times repeated Mask-mode passes with full checkpoints and again with
//      the write-set plans installed, reporting wall time and the
//      checkpoint-unit counters (snapshot nodes vs captured leaves) — once
//      for the minimal wrap-pure mask and once for a conservative mask that
//      wraps every instrumented method (the deployment mode when no
//      classification campaign has run; here the analysis' empty-capture
//      plans for read-only methods dominate the saving),
//   3. verifies equivalence: the plan-driven mask must classify identically
//      to the full-checkpoint mask under re-injection (zero non-atomic
//      methods) with the shadow completeness validator reporting zero
//      divergences.
//
// Exit is non-zero when verification fails anywhere or when the collections
// or xml family saves less than the checkpoint-unit floor under its better
// mask configuration.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fatomic/analyze/static_report.hpp"
#include "fatomic/mask/masker.hpp"
#include "fatomic/report/json.hpp"

namespace analyze = fatomic::analyze;
namespace detect = fatomic::detect;
namespace mask = fatomic::mask;
namespace weave = fatomic::weave;

#ifndef FATOMIC_SOURCE_DIR
#error "FATOMIC_SOURCE_DIR must point at the repository's src/ tree"
#endif

namespace {

using Clock = std::chrono::steady_clock;
constexpr int kReps = 50;

struct Cost {
  double ms = 0;                      ///< per program pass
  std::uint64_t full_snapshots = 0;   ///< full deep copies taken
  std::uint64_t partial_snapshots = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t units = 0;  ///< snapshot nodes + partial leaves captured
};

/// Runs the masked program kReps times under Mask mode with the given plan
/// map (null = full checkpoints) and reports per-pass averages.
Cost masked_cost(const subjects::apps::App& app,
                 const weave::Runtime::WrapPredicate& wrap,
                 std::shared_ptr<const weave::PlanMap> plans) {
  auto& rt = weave::Runtime::instance();
  mask::MaskedScope scope(wrap, std::move(plans));
  rt.stats = {};
  const auto t0 = Clock::now();
  for (int i = 0; i < kReps; ++i) app.program();
  const auto t1 = Clock::now();
  Cost c;
  c.ms = std::chrono::duration<double, std::milli>(t1 - t0).count() / kReps;
  c.full_snapshots = rt.stats.snapshots_taken / kReps;
  c.partial_snapshots = rt.stats.partial_checkpoints / kReps;
  c.fallbacks = rt.stats.partial_fallbacks / kReps;
  c.units = rt.stats.checkpoint_units / kReps;
  return c;
}

}  // namespace

int main() {
  const analyze::StaticReport sreport =
      analyze::analyze_sources(std::string(FATOMIC_SOURCE_DIR) + "/subjects");
  const auto plans = mask::make_plans(sreport);
  std::printf("write-set analysis: %zu of %zu methods with partial plans\n\n",
              sreport.write_sets.partial_count(),
              sreport.write_sets.methods.size());

  struct Family {
    std::string family;
    std::string app;
    double min_saved_pct;  ///< checkpoint-unit saving floor (acceptance)
  };
  const std::vector<Family> families = {
      {"collections", "LinkedList", 10.0},
      {"xml", "xml2xml1", 10.0},
      {"selfstar", "adaptorChain", 0.0},
      {"regexp", "RegExp", 0.0},
  };

  std::printf("%-14s %-14s | %8s %8s %7s | %8s %8s %7s | %5s\n", "family",
              "app", "pure:ful", "pure:pln", "saved%", "all:full", "all:plan",
              "saved%", "ok");

  // Conservative deployment mask: wrap every instrumented method (no
  // classification campaign needed).  Here the analysis' empty-capture plans
  // for read-only methods carry the saving.
  const weave::Runtime::WrapPredicate wrap_any =
      [](const weave::MethodInfo&) { return true; };

  auto saved_pct = [](const Cost& full, const Cost& plan) {
    return full.units == 0
               ? 0.0
               : 100.0 * (1.0 - static_cast<double>(plan.units) /
                                    static_cast<double>(full.units));
  };

  bool ok = true;
  bench_common::JsonArray rows;
  for (const Family& f : families) {
    const auto& app = subjects::apps::app(f.app);
    detect::Experiment exp(app.program);
    auto cls = detect::classify(exp.run());
    auto wrap = mask::wrap_pure(cls);

    const Cost pure_full = masked_cost(app, wrap, nullptr);
    const Cost pure_plan = masked_cost(app, wrap, plans);
    const Cost all_full = masked_cost(app, wrap_any, nullptr);
    const Cost all_plan = masked_cost(app, wrap_any, plans);
    const double pure_saved = saved_pct(pure_full, pure_plan);
    const double all_saved = saved_pct(all_full, all_plan);

    // Equivalence + completeness: the plan-driven mask must repair the app
    // exactly like the full-checkpoint mask, and the shadow validator must
    // see every partial restore reproduce the full-restore state.
    const auto full_cls = mask::verify_masked(app.program, wrap);
    mask::VerifySettings opts;
    opts.plans = plans;
    opts.validate = true;
    const auto partial_v = mask::verify_masked_full(app.program, wrap, {}, opts);
    const bool equivalent =
        fatomic::report::classification_json(full_cls) ==
        fatomic::report::classification_json(partial_v.classification);
    const auto divergences = partial_v.campaign.stats.validator_divergences;
    const bool row_ok = equivalent &&
                        partial_v.classification.nonatomic_names().empty() &&
                        divergences == 0 &&
                        std::max(pure_saved, all_saved) >= f.min_saved_pct;
    ok = ok && row_ok;

    std::printf("%-14s %-14s | %8llu %8llu %6.1f%% | %8llu %8llu %6.1f%% | %5s\n",
                f.family.c_str(), f.app.c_str(),
                static_cast<unsigned long long>(pure_full.units),
                static_cast<unsigned long long>(pure_plan.units), pure_saved,
                static_cast<unsigned long long>(all_full.units),
                static_cast<unsigned long long>(all_plan.units), all_saved,
                row_ok ? "yes" : "NO");
    if (!equivalent) std::printf("  DIVERGED: plan-driven classification differs\n");
    if (!partial_v.classification.nonatomic_names().empty())
      std::printf("  NOT REPAIRED: %zu non-atomic methods remain\n",
                  partial_v.classification.nonatomic_names().size());
    if (divergences > 0)
      std::printf("  VALIDATOR: %llu partial restores diverged from the "
                  "shadow full checkpoint\n",
                  static_cast<unsigned long long>(divergences));
    if (std::max(pure_saved, all_saved) < f.min_saved_pct)
      std::printf("  below the %.0f%% checkpoint-unit saving floor\n",
                  f.min_saved_pct);

    auto mask_json = [](const Cost& full, const Cost& plan, double saved) {
      return bench_common::JsonObject{}
          .put("units_full", full.units)
          .put("units_plan", plan.units)
          .put("saved_pct", saved)
          .put("ms_full", full.ms)
          .put("ms_plan", plan.ms)
          .put("full_snapshots", full.full_snapshots)
          .put("partial_snapshots", plan.partial_snapshots)
          .put("fallbacks", plan.fallbacks)
          .dump();
    };
    rows.add_raw(
        bench_common::JsonObject{}
            .put("family", f.family)
            .put("app", f.app)
            .put_raw("wrap_pure", mask_json(pure_full, pure_plan, pure_saved))
            .put_raw("wrap_all", mask_json(all_full, all_plan, all_saved))
            .put("equivalent", equivalent)
            .put("validator_divergences", divergences)
            .put("ok", row_ok)
            .dump());
  }

  bench_common::write_bench_json(
      "mask_cost",
      bench_common::JsonObject{}
          .put("partial_plans", sreport.write_sets.partial_count())
          .put("methods_total", sreport.write_sets.methods.size())
          .put("plan_coverage",
               sreport.write_sets.methods.empty()
                   ? 0.0
                   : static_cast<double>(sreport.write_sets.partial_count()) /
                         static_cast<double>(sreport.write_sets.methods.size()))
          .put_raw("families", rows.dump())
          .put("ok", ok)
          .dump());
  return ok ? 0 : 1;
}
